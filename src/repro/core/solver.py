"""Sparse LP/MILP assembly and solution on SciPy's HiGHS backend.

A thin, explicit layer between the paper's formulations and
``scipy.optimize.linprog`` / ``scipy.optimize.milp``: named variables with
bounds and optional integrality, two-sided sparse constraints, minimize
objective.  Keeping assembly in COO triplets and converting once keeps the
build linear in the number of nonzeros (the event-power constraints of a
32-rank trace contribute hundreds of thousands of entries).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass

import types

import numpy as np
import scipy.optimize as sopt
import scipy.sparse as sp

from ..obs.audit import SolveRecord, current_audit
from ..obs.events import SolveEvent
from ..obs.metrics import ITERATION_BUCKETS, current_metrics
from ..obs.recorder import current_recorder

try:  # SciPy's bundled HiGHS bindings; internal layout varies by version.
    from scipy.optimize._highspy import _core as _hcore
    from scipy.optimize._highspy._core import simplex_constants as _hsimplex
    from scipy.optimize._linprog_highs import _highs_to_scipy_status_message

    _HIGHS_DIRECT = True
except Exception:  # pragma: no cover - exercised only on other scipy builds
    _hcore = _hsimplex = _highs_to_scipy_status_message = None
    _HIGHS_DIRECT = False

__all__ = [
    "LpStatus",
    "LpSolution",
    "LinearProgram",
    "FrozenProgram",
    "InfeasibleError",
]


class LpStatus(enum.Enum):
    """Solver termination states (mapped from HiGHS status codes)."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


class InfeasibleError(RuntimeError):
    """Raised by callers that require a feasible model (e.g. tight caps)."""


@dataclass
class LpSolution:
    """Solver outcome: status, objective, and the primal vector."""

    status: LpStatus
    objective: float
    x: np.ndarray
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.status is LpStatus.OPTIMAL


@dataclass
class _Constraint:
    idx: list
    coeff: list
    lb: float
    ub: float
    tag: str = ""

    @property
    def n_rows(self) -> int:
        return 1


@dataclass
class _RowBlock:
    """Many constraint rows appended as one CSR-layout batch.

    Bulk assembly keeps the per-row Python overhead out of model builds:
    row ``i`` of the block spans ``cols[indptr[i]:indptr[i+1]]`` with the
    matching ``vals`` slice, bounded by ``lo[i] <= row <= hi[i]``.  The
    assembled matrix is identical to adding the same rows one by one.
    """

    indptr: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    tag: str = ""

    @property
    def n_rows(self) -> int:
        return int(self.lo.shape[0])


class LinearProgram:
    """Incrementally built minimize-c·x linear (or mixed-integer) program."""

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._lb: list[float] = []
        self._ub: list[float] = []
        self._integrality: list[int] = []
        self._names: dict[str, int] = {}
        self._objective: dict[int, float] = {}
        self._objective_dense: np.ndarray | None = None
        self._rows: list[_Constraint | _RowBlock] = []
        self._n_rows = 0

    # ------------------------------------------------------------------
    @property
    def n_vars(self) -> int:
        return len(self._lb)

    @property
    def n_constraints(self) -> int:
        return self._n_rows

    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = np.inf,
        integer: bool = False,
    ) -> int:
        """Register a variable; returns its column index."""
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        if lb > ub:
            raise ValueError(f"variable {name}: lb {lb} > ub {ub}")
        idx = len(self._lb)
        self._names[name] = idx
        self._lb.append(lb)
        self._ub.append(ub)
        self._integrality.append(1 if integer else 0)
        return idx

    def add_vars(
        self,
        names: list[str],
        lb: float | np.ndarray = 0.0,
        ub: float | np.ndarray = np.inf,
        integer: bool = False,
    ) -> list[int]:
        """Register many variables at once; returns their column indices.

        ``lb``/``ub`` broadcast against ``names`` — pass arrays for
        per-variable bounds.  Equivalent to calling :meth:`add_var` in a
        loop, without the per-call overhead.
        """
        n = len(names)
        start = len(self._lb)
        lbs = np.broadcast_to(np.asarray(lb, dtype=float), (n,))
        ubs = np.broadcast_to(np.asarray(ub, dtype=float), (n,))
        if np.any(lbs > ubs):
            bad = int(np.flatnonzero(lbs > ubs)[0])
            raise ValueError(
                f"variable {names[bad]}: lb {lbs[bad]} > ub {ubs[bad]}"
            )
        for i, name in enumerate(names):
            if name in self._names:
                raise ValueError(f"duplicate variable name {name!r}")
            self._names[name] = start + i
        self._lb.extend(lbs.tolist())
        self._ub.extend(ubs.tolist())
        self._integrality.extend([1 if integer else 0] * n)
        return list(range(start, start + n))

    def var(self, name: str) -> int:
        return self._names[name]

    def var_bounds(self, idx: int) -> tuple[float, float]:
        """(lower, upper) bounds of a variable by column index."""
        return self._lb[idx], self._ub[idx]

    def add_constraint(
        self,
        terms: dict[int, float],
        lb: float = -np.inf,
        ub: float = np.inf,
        label: str = "",
        tag: str = "",
    ) -> None:
        """Add ``lb <= sum(coeff * x) <= ub`` (duplicate indices accumulate).

        ``tag`` marks rows whose bounds are a *parameter* of the model
        rather than trace structure (e.g. the power-cap RHS); tagged rows
        can be re-bounded between solves via :meth:`FrozenProgram.solve`
        without reassembling the constraint matrix.
        """
        if not terms:
            raise ValueError(f"empty constraint {label!r}")
        if lb > ub:
            raise ValueError(f"constraint {label!r}: lb {lb} > ub {ub}")
        self._rows.append(
            _Constraint(list(terms.keys()), list(terms.values()), lb, ub, tag)
        )
        self._n_rows += 1

    def add_block(
        self,
        indptr: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        lo: float | np.ndarray,
        hi: float | np.ndarray,
        label: str = "",
        tag: str = "",
    ) -> None:
        """Add a batch of rows in CSR layout (bulk assembly).

        Row ``i`` is ``lo[i] <= sum(vals[k] * x[cols[k]]
        for k in indptr[i]:indptr[i+1]) <= hi[i]``; scalar ``lo``/``hi``
        broadcast.  Assembles to exactly the same matrix as the equivalent
        sequence of :meth:`add_constraint` calls.  ``tag`` applies to every
        row of the block (see :meth:`add_constraint`).
        """
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        vals = np.ascontiguousarray(vals, dtype=float)
        n = int(indptr.shape[0]) - 1
        if n < 0 or indptr[0] != 0 or indptr[-1] != cols.shape[0]:
            raise ValueError(f"block {label!r}: malformed indptr")
        if cols.shape != vals.shape:
            raise ValueError(f"block {label!r}: cols/vals length mismatch")
        widths = np.diff(indptr)
        if np.any(widths < 0):
            raise ValueError(f"block {label!r}: indptr must be non-decreasing")
        if np.any(widths == 0):
            raise ValueError(f"empty constraint in block {label!r}")
        lo_arr = np.array(np.broadcast_to(np.asarray(lo, dtype=float), (n,)))
        hi_arr = np.array(np.broadcast_to(np.asarray(hi, dtype=float), (n,)))
        if np.any(lo_arr > hi_arr):
            raise ValueError(f"block {label!r}: lb > ub")
        if n == 0:
            return
        self._rows.append(_RowBlock(indptr, cols, vals, lo_arr, hi_arr, tag))
        self._n_rows += n

    def add_eq(
        self, terms: dict[int, float], rhs: float, label: str = "", tag: str = ""
    ) -> None:
        """Add ``sum(coeff * x) == rhs``."""
        self.add_constraint(terms, lb=rhs, ub=rhs, label=label, tag=tag)

    def add_ge(
        self, terms: dict[int, float], rhs: float, label: str = "", tag: str = ""
    ) -> None:
        """Add ``sum(coeff * x) >= rhs``."""
        self.add_constraint(terms, lb=rhs, label=label, tag=tag)

    def add_le(
        self, terms: dict[int, float], rhs: float, label: str = "", tag: str = ""
    ) -> None:
        """Add ``sum(coeff * x) <= rhs``."""
        self.add_constraint(terms, ub=rhs, label=label, tag=tag)

    def set_objective(self, terms: dict[int, float]) -> None:
        """Minimization objective (replaces any previous one)."""
        self._objective = dict(terms)
        self._objective_dense = None

    def set_objective_dense(self, c: np.ndarray) -> None:
        """Minimization objective as a dense coefficient vector.

        The bulk-assembly twin of :meth:`set_objective`: callers that
        already hold per-column coefficients as an array hand it over
        directly instead of round-tripping through a dict.
        """
        c = np.asarray(c, dtype=float)
        if c.shape != (self.n_vars,):
            raise ValueError(
                f"objective length {c.shape} != n_vars {self.n_vars}"
            )
        self._objective_dense = c.copy()
        self._objective = {}

    # ------------------------------------------------------------------
    def _assemble(self) -> tuple[np.ndarray, sp.csr_matrix, np.ndarray, np.ndarray]:
        if self._objective_dense is not None:
            c = self._objective_dense.copy()
            if c.shape != (self.n_vars,):
                raise ValueError("dense objective set before final variables")
        else:
            c = np.zeros(self.n_vars)
            for idx, coeff in self._objective.items():
                c[idx] += coeff
        row_parts: list[np.ndarray] = []
        col_parts: list[np.ndarray] = []
        val_parts: list[np.ndarray] = []
        lo = np.empty(self.n_constraints)
        hi = np.empty(self.n_constraints)
        r = 0
        for seg in self._rows:
            if isinstance(seg, _RowBlock):
                k = seg.n_rows
                row_parts.append(
                    np.repeat(np.arange(r, r + k), np.diff(seg.indptr))
                )
                col_parts.append(seg.cols)
                val_parts.append(seg.vals)
                lo[r:r + k] = seg.lo
                hi[r:r + k] = seg.hi
                r += k
            else:
                m = len(seg.idx)
                row_parts.append(np.full(m, r, dtype=np.int64))
                col_parts.append(np.asarray(seg.idx, dtype=np.int64))
                val_parts.append(np.asarray(seg.coeff, dtype=float))
                lo[r] = seg.lb
                hi[r] = seg.ub
                r += 1
        if row_parts:
            rows = np.concatenate(row_parts)
            cols = np.concatenate(col_parts)
            vals = np.concatenate(val_parts)
        else:
            rows = cols = np.empty(0, dtype=np.int64)
            vals = np.empty(0)
        a = sp.coo_matrix(
            (vals, (rows, cols)), shape=(self.n_constraints, self.n_vars)
        ).tocsr()
        a.sum_duplicates()
        return c, a, lo, hi

    @property
    def is_mip(self) -> bool:
        return any(self._integrality)

    def freeze(self) -> "FrozenProgram":
        """Assemble once into a re-solvable sparse model.

        The expensive work — COO triplet collection, CSR conversion, the
        one-sided row split ``linprog`` wants — happens here exactly once;
        the returned :class:`FrozenProgram` then solves any number of
        times, optionally overriding the bounds of tagged rows (parametric
        re-solve).
        """
        c, a, lo, hi = self._assemble()
        tag_rows: dict[str, list[int]] = {}
        r = 0
        for seg in self._rows:
            if seg.tag:
                tag_rows.setdefault(seg.tag, []).extend(
                    range(r, r + seg.n_rows)
                )
            r += seg.n_rows
        return FrozenProgram(
            c=c,
            a=a,
            lo=lo,
            hi=hi,
            var_lb=list(self._lb),
            var_ub=list(self._ub),
            integrality=list(self._integrality),
            tag_rows={t: np.asarray(rs) for t, rs in tag_rows.items()},
            name=self.name,
        )

    def solve(self, time_limit_s: float | None = None) -> LpSolution:
        """Solve with HiGHS; dispatches to the MIP solver when needed."""
        return self.freeze().solve(time_limit_s=time_limit_s)


class FrozenProgram:
    """An assembled LP/MILP supporting parametric RHS re-solve.

    Holds the objective, the CSR constraint matrix, variable bounds, and —
    for the pure-LP path — the precomputed one-sided split, so repeated
    solves skip everything but the HiGHS call itself.  Rows tagged at
    :meth:`LinearProgram.add_constraint` time can have their finite bounds
    replaced per solve: a row built as ``... <= cap`` re-solves with a new
    cap by updating one entry of the RHS vector.  The matrix handed to the
    solver is identical to what a from-scratch build at the new parameter
    would produce, so parametric solutions match rebuild solutions exactly.

    When SciPy's bundled HiGHS bindings are importable, LP solves go
    through a persistent per-program HiGHS handle: the model and options
    are passed once, re-solves update only the rows whose RHS moved, and
    the solver state is cleared before each run so every solve starts
    cold — bit-identical to ``scipy.optimize.linprog`` on the same data
    (the tests assert this) while skipping its per-call model rebuild.
    On builds where the bindings are unavailable the code falls back to
    ``linprog``/``milp`` transparently.
    """

    def __init__(
        self,
        c: np.ndarray,
        a: sp.csr_matrix,
        lo: np.ndarray,
        hi: np.ndarray,
        var_lb: list[float],
        var_ub: list[float],
        integrality: list[int],
        tag_rows: dict[str, np.ndarray],
        name: str = "lp",
    ) -> None:
        self.name = name
        self._c = c
        self._a = a
        self._lo = lo
        self._hi = hi
        self._var_lb = var_lb
        self._var_ub = var_ub
        self._integrality = integrality
        self._tag_rows = tag_rows
        self.n_solves = 0
        self._direct = None  # lazy persistent HiGHS handle (LP path only)
        self._direct_b_ub = None  # RHS last handed to that handle
        self._direct_time_limit = np.inf  # time_limit the handle holds
        self._status_cache: dict = {}  # HighsModelStatus -> (code, message)
        # One-sided split for linprog, computed once.  The finiteness
        # pattern is part of the model *structure*: RHS overrides replace
        # finite bounds with finite values, so the split never changes.
        self._ub_rows = np.isfinite(hi)
        self._lb_rows = np.isfinite(lo)
        if self._ub_rows.any() or self._lb_rows.any():
            self._a_ub = sp.vstack(
                [a[self._ub_rows], -a[self._lb_rows]], format="csr"
            )
        else:
            self._a_ub = None

    # ------------------------------------------------------------------
    @property
    def n_vars(self) -> int:
        return len(self._var_lb)

    @property
    def n_constraints(self) -> int:
        return int(self._lo.shape[0])

    @property
    def is_mip(self) -> bool:
        return any(self._integrality)

    @property
    def tags(self) -> tuple[str, ...]:
        return tuple(sorted(self._tag_rows))

    def rows_for(self, tag: str) -> np.ndarray:
        """Row indices carrying ``tag`` (empty array for unknown tags)."""
        return self._tag_rows.get(tag, np.empty(0, dtype=int))

    def _bounds_with(self, rhs: dict[str, float] | None) -> tuple[
        np.ndarray, np.ndarray
    ]:
        if not rhs:
            return self._lo, self._hi
        lo, hi = self._lo.copy(), self._hi.copy()
        for tag, value in rhs.items():
            rows = self._tag_rows.get(tag)
            if rows is None:
                raise KeyError(
                    f"no constraint rows tagged {tag!r} "
                    f"(known tags: {list(self._tag_rows)})"
                )
            if not np.isfinite(value):
                raise ValueError(f"tag {tag!r}: RHS must be finite, got {value}")
            hi[rows[self._ub_rows[rows]]] = value
            lo[rows[self._lb_rows[rows]]] = value
        return lo, hi

    def solve(
        self,
        time_limit_s: float | None = None,
        rhs: dict[str, float] | None = None,
    ) -> LpSolution:
        """Solve, optionally re-bounding tagged rows (``{tag: new_rhs}``).

        An override replaces every finite bound of the tagged rows — the
        upper bound of ``<=`` rows, the lower bound of ``>=`` rows, both
        for equalities — leaving the assembled matrix untouched.

        Every solve is audited: when a :class:`repro.obs.SolveAudit` is
        active, the model shape, iteration count, status, objective,
        wall time, and provenance (cold first solve vs parametric
        re-solve) are recorded; an active
        :class:`repro.obs.TraceRecorder` additionally gets a solve
        event.  Both are no-ops when disabled.
        """
        lo, hi = self._bounds_with(rhs)
        self.n_solves += 1
        source = "cold" if self.n_solves == 1 else "resolve"
        audit = current_audit()
        recorder = current_recorder()
        metrics = current_metrics()
        t0 = (
            time.perf_counter()
            if audit is not None or metrics is not None
            else 0.0
        )
        if self.is_mip:
            solution, backend, iterations = self._solve_milp(lo, hi, time_limit_s)
        else:
            solution, backend, iterations = self._solve_lp(lo, hi, time_limit_s)
        if metrics is not None:
            # solve.total is a pure function of the work performed;
            # cold/resolve splits, iteration counts, and wall seconds
            # depend on which worker's warm solver pool a cell landed on,
            # so they are operational (see repro.obs.metrics).
            metrics.inc("solve.total")
            metrics.inc(f"solve.{source}", operational=True)
            if iterations is not None:
                metrics.observe(
                    "solve.iterations", iterations,
                    buckets=ITERATION_BUCKETS, operational=True,
                )
            metrics.observe(
                "solve.wall_s", time.perf_counter() - t0, operational=True
            )
        if audit is not None:
            audit.record(SolveRecord(
                program=self.name,
                backend=backend,
                source=source,
                rows=self.n_constraints,
                cols=self.n_vars,
                nnz=int(self._a.nnz),
                iterations=iterations,
                status=solution.status.value,
                objective=solution.objective if solution.ok else None,
                wall_s=time.perf_counter() - t0,
            ))
        if recorder is not None:
            recorder.emit(SolveEvent(
                program=self.name,
                source=source,
                backend=backend,
                rows=self.n_constraints,
                cols=self.n_vars,
                nnz=int(self._a.nnz),
                status=solution.status.value,
            ))
        return solution

    def _solve_lp(self, lo, hi, time_limit_s) -> tuple[LpSolution, str, int | None]:
        if _HIGHS_DIRECT and self._a_ub is not None:
            return self._solve_lp_direct(lo, hi, time_limit_s)
        b_ub = (
            np.concatenate([hi[self._ub_rows], -lo[self._lb_rows]])
            if self._a_ub is not None
            else None
        )
        options = {"presolve": True}
        if time_limit_s is not None:
            options["time_limit"] = time_limit_s
        res = sopt.linprog(
            self._c,
            A_ub=self._a_ub,
            b_ub=b_ub,
            bounds=list(zip(self._var_lb, self._var_ub)),
            method="highs",
            options=options,
        )
        iterations = getattr(res, "nit", None)
        return _wrap_result(res), "linprog", (
            int(iterations) if iterations is not None else None
        )

    def _prep_direct(self):
        """Build the persistent HiGHS model once (columns + matrix + options).

        Mirrors exactly what ``scipy.optimize.linprog(method="highs")``
        feeds HiGHS for this problem — same column-wise matrix, same
        bounds, same option set (dual simplex, presolve on, silent) — so
        the direct path returns bit-identical solutions.  Only the row
        upper bounds (the parametric RHS) change between solves.
        """
        a = sp.csc_matrix(self._a_ub)
        m, n = self._a_ub.shape
        model = _hcore.HighsLp()
        model.num_col_ = n
        model.num_row_ = m
        model.col_cost_ = self._c
        model.col_lower_ = np.asarray(self._var_lb, dtype=float)
        model.col_upper_ = np.asarray(self._var_ub, dtype=float)
        model.row_lower_ = np.full(m, -np.inf)
        model.a_matrix_.num_col_ = n
        model.a_matrix_.num_row_ = m
        model.a_matrix_.format_ = _hcore.MatrixFormat.kColwise
        model.a_matrix_.start_ = a.indptr
        model.a_matrix_.index_ = a.indices
        model.a_matrix_.value_ = a.data
        highs = _hcore._Highs()
        options = _hcore.HighsOptions()
        options.presolve = "on"
        options.highs_debug_level = _hcore.HighsDebugLevel.kHighsDebugLevelNone
        options.log_to_console = False
        options.output_flag = False
        options.simplex_strategy = (
            _hsimplex.SimplexStrategy.kSimplexStrategyDual
        )
        highs.passOptions(options)
        return highs, model

    def _solve_lp_direct(
        self, lo, hi, time_limit_s
    ) -> tuple[LpSolution, str, int | None]:
        if self._direct is None:
            self._direct = self._prep_direct()
        highs, model = self._direct
        b_ub = np.concatenate([hi[self._ub_rows], -lo[self._lb_rows]])
        limit = float(time_limit_s) if time_limit_s is not None else np.inf
        if limit != self._direct_time_limit:
            highs.setOptionValue("time_limit", limit)
            self._direct_time_limit = limit
        if self._direct_b_ub is None:
            # First solve: hand HiGHS the whole model.
            model.row_upper_ = b_ub
            highs.passModel(model)
        else:
            # Re-solve: only parametric RHS entries moved; update those
            # rows in place and drop any solver state so the run starts
            # cold — same model, same start, bit-identical to a fresh
            # passModel at this RHS.
            for row in np.nonzero(b_ub != self._direct_b_ub)[0]:
                highs.changeRowBounds(int(row), -np.inf, float(b_ub[row]))
            highs.clearSolver()
        self._direct_b_ub = b_ub
        highs.run()
        model_status = highs.getModelStatus()
        cached = self._status_cache.get(model_status)
        if cached is None:
            cached = _highs_to_scipy_status_message(
                model_status, highs.modelStatusToString(model_status)
            )
            self._status_cache[model_status] = cached
        status, message = cached
        info = highs.getInfo()
        if model_status == _hcore.HighsModelStatus.kOptimal:
            x = np.asarray(highs.getSolution().col_value)
            fun = info.objective_function_value
        else:
            x = fun = None
        solution = _wrap_result(
            types.SimpleNamespace(status=status, x=x, fun=fun, message=message)
        )
        return solution, "highs-direct", int(info.simplex_iteration_count)

    def _solve_milp(
        self, lo, hi, time_limit_s
    ) -> tuple[LpSolution, str, int | None]:
        constraints = sopt.LinearConstraint(self._a, lo, hi)
        bounds = sopt.Bounds(np.array(self._var_lb), np.array(self._var_ub))
        options = {}
        if time_limit_s is not None:
            options["time_limit"] = time_limit_s
        res = sopt.milp(
            self._c,
            constraints=constraints,
            bounds=bounds,
            integrality=np.array(self._integrality),
            options=options,
        )
        iterations = getattr(res, "nit", None)
        return _wrap_result(res), "milp", (
            int(iterations) if iterations is not None else None
        )


def _wrap_result(res) -> LpSolution:
    """Map a scipy OptimizeResult onto :class:`LpSolution`.

    HiGHS status codes: 0 optimal, 1 iteration/time limit, 2 infeasible,
    3 unbounded, 4 numerical trouble — everything that is neither solved
    nor a definite certificate maps to :attr:`LpStatus.ERROR`.
    """
    if res.status == 0:
        status = LpStatus.OPTIMAL
    elif res.status == 2:
        status = LpStatus.INFEASIBLE
    elif res.status == 3:
        status = LpStatus.UNBOUNDED
    else:
        status = LpStatus.ERROR
    x = res.x if res.x is not None else np.array([])
    obj = float(res.fun) if res.fun is not None else float("nan")
    return LpSolution(
        status=status, objective=obj, x=np.asarray(x), message=str(res.message)
    )
