"""Tests for the shared problem-instance IR and model compilation."""

import numpy as np
import pytest

from repro.core import (
    LpStatus,
    build_problem_instance,
    compile_energy,
    compile_fixed_order,
    compile_flow_ilp,
    extract_schedule,
    solve_fixed_order_lp,
)
from repro.core.model import MODEL_LAYER_VERSION, TaskFrontier, _as_frontiers
from repro.dag.graph import VertexKind
from repro.experiments import make_power_models
from repro.simulator import trace_application
from repro.workloads import imbalanced_collective_app


@pytest.fixture(scope="module")
def trace():
    app = imbalanced_collective_app(n_ranks=3, iterations=2, spread=1.3)
    return trace_application(app, make_power_models(3, 7))


@pytest.fixture(scope="module")
def instance(trace):
    return build_problem_instance(trace)


class TestProblemInstance:
    def test_anchors(self, trace, instance):
        assert instance.init_id == trace.graph.find_vertex(VertexKind.INIT).id
        assert instance.fin_id == trace.graph.find_vertex(VertexKind.FINALIZE).id
        assert instance.graph is trace.graph
        assert instance.version == MODEL_LAYER_VERSION

    def test_frontiers_mirror_trace(self, trace, instance):
        assert set(instance.convex) == set(trace.frontiers)
        assert set(instance.pareto) == set(trace.pareto)
        for edge_id, tf in instance.convex.items():
            points = trace.frontiers[edge_id]
            assert isinstance(tf, TaskFrontier)
            assert len(tf) == len(points)
            np.testing.assert_allclose(
                tf.durations, [p.duration_s for p in points]
            )
            np.testing.assert_allclose(tf.powers, [p.power_w for p in points])

    def test_frontier_family(self, instance):
        assert instance.frontier_family(discrete=False) is instance.convex
        assert instance.frontier_family(discrete=True) is instance.pareto

    def test_unconstrained_makespan(self, instance):
        assert instance.unconstrained_makespan_s() == pytest.approx(
            float(instance.events.initial.makespan)
        )

    def test_empty_frontier_rejected(self):
        with pytest.raises(ValueError, match="empty frontier"):
            _as_frontiers({0: []})

    def test_events_shared_when_given(self, trace, instance):
        again = build_problem_instance(trace, events=instance.events)
        assert again.events is instance.events


class TestCompilation:
    def test_all_formulations_compile_from_one_instance(self, instance):
        fixed = compile_fixed_order(instance, cap_w=100.0)
        energy = compile_energy(instance, slowdown=0.1)
        flow = compile_flow_ilp(instance, cap_w=100.0)
        assert fixed.instance is instance
        assert energy.instance is instance
        assert flow.instance is instance
        assert {fixed.formulation, energy.formulation, flow.formulation} == {
            "fixed-order", "energy-lp", "flow-ilp"
        }

    def test_base_rows_shared(self, instance):
        # Same trace structure -> same vertex variables and simplex rows
        # across formulations, regardless of objective.
        fixed = compile_fixed_order(instance, cap_w=100.0)
        energy = compile_energy(instance)
        assert fixed.v_idx == energy.v_idx
        assert fixed.c_idx == energy.c_idx

    def test_init_pinned(self, instance):
        fixed = compile_fixed_order(instance, cap_w=100.0)
        lb, ub = fixed.lp.var_bounds(fixed.v_idx[instance.init_id])
        assert (lb, ub) == (0.0, 0.0)

    def test_discrete_uses_pareto(self, instance):
        disc = compile_fixed_order(instance, cap_w=100.0, discrete=True)
        assert disc.frontiers is instance.pareto
        assert disc.kind == "discrete"
        assert disc.lp.is_mip

    def test_compiled_matches_entry_point(self, instance):
        compiled = compile_fixed_order(instance, cap_w=120.0)
        solution = compiled.lp.solve()
        assert solution.status is LpStatus.OPTIMAL
        schedule = extract_schedule(compiled, solution)
        res = solve_fixed_order_lp(instance.trace, 120.0, instance=instance)
        assert schedule.objective_s == pytest.approx(res.makespan_s)
        assert schedule.cap_w == 120.0
        for ref, a in schedule.assignments.items():
            b = res.schedule.assignments[ref]
            assert a.duration_s == pytest.approx(b.duration_s)
            assert a.power_w == pytest.approx(b.power_w)


class TestExtractSchedule:
    def test_needs_cap(self, instance):
        energy = compile_energy(instance)
        energy.cap_w = None
        solution = energy.lp.solve()
        with pytest.raises(ValueError, match="cap"):
            extract_schedule(energy, solution)

    def test_solver_info_merged(self, instance):
        energy = compile_energy(instance, slowdown=0.05)
        solution = energy.lp.solve()
        schedule = extract_schedule(energy, solution)
        assert schedule.solver_info["formulation"] == "energy-lp"
        assert schedule.solver_info["n_vars"] == energy.lp.n_vars
        assert "time_budget_s" in schedule.solver_info

    def test_mixture_normalized(self, instance):
        compiled = compile_fixed_order(instance, cap_w=90.0)
        solution = compiled.lp.solve()
        if solution.status is not LpStatus.OPTIMAL:
            pytest.skip("cap infeasible for this trace")
        schedule = extract_schedule(compiled, solution)
        for a in schedule.assignments.values():
            assert sum(f for _, f in a.mixture) == pytest.approx(1.0)

    def test_tiny_fraction_snaps_to_argmax(self, instance):
        # A degenerate solution vector (all fractions ~0) must still decode
        # to a single valid configuration.
        compiled = compile_fixed_order(instance, cap_w=500.0)
        solution = compiled.lp.solve()
        x = solution.x.copy()
        edge_id = next(iter(compiled.c_idx))
        for col in compiled.c_idx[edge_id]:
            x[col] = 0.0
        x[compiled.c_idx[edge_id][0]] = 1e-12
        degenerate = type(solution)(
            status=solution.status, objective=solution.objective, x=x
        )
        schedule = extract_schedule(compiled, degenerate)
        ref = instance.trace.edge_refs[edge_id]
        mixture = schedule.assignments[ref].mixture
        assert len(mixture) == 1
        assert mixture[0][1] == pytest.approx(1.0)


class TestLayerBoundaries:
    def test_formulations_do_not_build_events(self):
        # Acceptance: formulations consume the IR; only the model layer
        # touches event-structure and task-space measurement.
        import inspect

        from repro.core import energy_lp, fixed_order_lp, flow_ilp

        for mod in (fixed_order_lp, energy_lp, flow_ilp):
            src = inspect.getsource(mod)
            assert "build_event_structure" not in src, mod.__name__
            assert "measure_task_space" not in src, mod.__name__
