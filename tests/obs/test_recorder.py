"""TraceRecorder: buffering, scoping, merging, contextvar activation."""

from __future__ import annotations

import pytest

from repro.obs.events import (
    EVENT_KINDS,
    CapExceededEvent,
    CellFailureEvent,
    CollectiveEvent,
    CounterEvent,
    MpiWaitEvent,
    ReallocEvent,
    SolveEvent,
    TaskEvent,
)
from repro.obs.recorder import TraceRecorder, current_recorder, emit, use_recorder


def _counter(i: int) -> CounterEvent:
    return CounterEvent(name="c", ts_s=float(i), values={"v": i})


class TestBuffer:
    def test_emit_envelopes_seq_and_run(self):
        rec = TraceRecorder()
        rec.emit(_counter(0))
        rec.emit(_counter(1))
        docs = rec.snapshot()
        assert [d["seq"] for d in docs] == [0, 1]
        assert all(d["run"] == "run" for d in docs)

    def test_capacity_bounds_and_counts_drops(self):
        rec = TraceRecorder(capacity=2)
        for i in range(5):
            rec.emit(_counter(i))
        assert len(rec) == 2
        assert rec.dropped == 3
        # Ring semantics: the newest events survive.
        assert [d["ts_s"] for d in rec.snapshot()] == [3.0, 4.0]

    def test_unbounded_capacity(self):
        rec = TraceRecorder(capacity=None)
        for i in range(10):
            rec.emit(_counter(i))
        assert len(rec) == 10 and rec.dropped == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)


class TestRunScope:
    def test_scope_stamps_and_restores(self):
        rec = TraceRecorder()
        with rec.run_scope("outer"):
            rec.emit(_counter(0))
            with rec.run_scope("inner"):
                rec.emit(_counter(1))
            rec.emit(_counter(2))
        labels = [d["run"] for d in rec.snapshot()]
        assert labels == ["outer", "inner", "outer"]
        assert rec.run_label == "run"

    def test_events_for_run_filters(self):
        rec = TraceRecorder()
        with rec.run_scope("a"):
            rec.emit(_counter(0))
        with rec.run_scope("b"):
            rec.emit(_counter(1))
        assert [d["ts_s"] for d in rec.events_for_run("b")] == [1.0]


class TestExtend:
    def test_worker_batches_are_resequenced(self):
        parent = TraceRecorder()
        parent.emit(_counter(0))
        worker = TraceRecorder()
        with worker.run_scope("worker-run"):
            worker.emit(_counter(10))
            worker.emit(_counter(11))
        parent.extend(worker.snapshot())
        docs = parent.snapshot()
        assert [d["seq"] for d in docs] == [0, 1, 2]  # monotone after merge
        assert docs[1]["run"] == "worker-run"  # scope labels survive the trip

    def test_extend_respects_capacity(self):
        parent = TraceRecorder(capacity=2)
        parent.extend([_counter(i).to_dict() | {"seq": i, "run": "r"}
                       for i in range(4)])
        assert len(parent) == 2 and parent.dropped == 2


class TestActivation:
    def test_module_emit_is_noop_when_disabled(self):
        assert current_recorder() is None
        emit(_counter(0))  # must not raise, must not record anywhere

    def test_module_emit_targets_active_recorder(self):
        rec = TraceRecorder()
        with use_recorder(rec):
            assert current_recorder() is rec
            emit(_counter(7))
        assert current_recorder() is None
        assert len(rec) == 1


class TestEventShapes:
    def test_every_kind_has_canonical_dict_form(self):
        events = [
            TaskEvent(label="t", rank=0, iteration=1, ts_s=0.0, dur_s=1.0,
                      freq_ghz=2.6, threads=8, duty=1.0, power_w=50.0),
            MpiWaitEvent(name="recv", rank=1, ts_s=0.5, dur_s=0.1),
            CollectiveEvent(name="allreduce", rank=0, ts_s=1.0, dur_s=0.2),
            ReallocEvent(ts_s=2.0, iteration=3, job_cap_w=200.0,
                         alloc_before_w=(90.0, 110.0),
                         alloc_after_w=(100.0, 100.0)),
            CapExceededEvent(cap_w=30.0, power_w=33.0),
            SolveEvent(program="lp", source="cold", backend="highs-direct",
                       rows=10, cols=20, nnz=40, status="optimal"),
            CounterEvent(name="job_power_w", ts_s=0.0, values={"watts": 120.0}),
            CellFailureEvent(benchmark="comd", cap_per_socket_w=50.0,
                             error_type="InjectedFault",
                             error_message="injected fault on cell cap=50",
                             attempts=2),
        ]
        assert sorted(e.kind for e in events) == sorted(EVENT_KINDS)
        for event in events:
            doc = event.to_dict()
            assert set(doc) == {"kind", "name", "rank", "ts_s", "dur_s", "args"}
            assert doc["kind"] == event.kind

    def test_realloc_reports_moved_watts(self):
        doc = ReallocEvent(
            ts_s=0.0, iteration=0, job_cap_w=200.0,
            alloc_before_w=(90.0, 110.0), alloc_after_w=(100.0, 100.0),
        ).to_dict()
        assert doc["args"]["moved_w"] == pytest.approx(10.0)
