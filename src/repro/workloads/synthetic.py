"""Synthetic workloads: the Figure 8 exchange and random DAG generators.

``two_rank_exchange`` reproduces the paper's flow-vs-fixed-order benchmark
("a two-process asynchronous message exchange", Figure 8) — small enough
for the flow ILP's <30-edge practical limit.  ``random_application``
produces structurally-diverse programs for property-based tests of the
simulator, tracer, and LP.
"""

from __future__ import annotations

import numpy as np

from ..machine.performance import TaskKernel
from ..simulator.program import (
    Application,
    CollectiveOp,
    ComputeOp,
    IsendOp,
    PcontrolOp,
    RecvOp,
    SendOp,
    WaitOp,
)
from .base import WorkloadBuilder

__all__ = [
    "two_rank_exchange",
    "random_application",
    "imbalanced_collective_app",
    "phased_offload_app",
]


def two_rank_exchange(
    phases: int = 2,
    cpu_seconds: float = 0.8,
    mem_seconds: float = 0.15,
    message_bytes: int = 1 << 20,
    imbalance: float = 1.0,
) -> Application:
    """Two ranks computing and exchanging asynchronous messages (Fig. 8).

    Per phase: rank 0 computes then Isends to rank 1, computes again and
    waits; rank 1 computes, receives, and computes.  The default is
    *balanced* (``imbalance=1``): both formulations then see (almost) no
    slack, which is the regime where the paper reports 1.9% agreement —
    the fixed-order LP charges slack at task power while the flow ILP
    treats slack separately, so heavy slack would legitimately separate
    them (see DESIGN.md).  With default parameters the trace has
    ``4*phases`` compute edges, inside the flow ILP's practical range.
    """
    if phases < 1:
        raise ValueError("phases must be >= 1")
    kernel = TaskKernel(
        cpu_seconds=cpu_seconds,
        mem_seconds=mem_seconds,
        parallel_fraction=0.99,
        mem_parallel_fraction=0.9,
        bw_saturation_threads=6,
        activity=1.0,
        mem_intensity=0.3,
        name="exchange",
    )
    b = WorkloadBuilder(name="two-rank-exchange", n_ranks=2)
    b.metadata["benchmark"] = "synthetic async exchange (Fig. 8)"
    for ph in range(phases):
        b.add(0, ComputeOp(kernel, ph, label="pre-send"))
        b.add(0, IsendOp(dst=1, size_bytes=message_bytes, request=1, iteration=ph))
        b.add(0, ComputeOp(kernel.scaled(0.7), ph, label="overlap"))
        b.add(0, WaitOp(1, iteration=ph))
        b.add(1, ComputeOp(kernel.scaled(imbalance), ph, label="pre-recv"))
        b.add(1, RecvOp(src=0, iteration=ph))
        b.add(1, ComputeOp(kernel, ph, label="post-recv"))
    return b.finish(phases)


def imbalanced_collective_app(
    n_ranks: int = 4,
    iterations: int = 2,
    spread: float = 1.5,
    cpu_seconds: float = 1.0,
    seed: int = 7,
) -> Application:
    """Compute + allreduce per iteration with a fixed imbalance — the
    smallest workload exhibiting the paper's power-reallocation gain."""
    rng = np.random.default_rng(seed)
    factors = np.linspace(1.0, spread, n_ranks)
    rng.shuffle(factors)
    kernel = TaskKernel(
        cpu_seconds=cpu_seconds, mem_seconds=0.2 * cpu_seconds,
        mem_intensity=0.3, name="imbalanced",
    )
    b = WorkloadBuilder(name="imbalanced-collective", n_ranks=n_ranks)
    for it in range(iterations):
        for r in range(n_ranks):
            b.add(r, ComputeOp(kernel.scaled(float(factors[r])), it))
            b.add(r, CollectiveOp("allreduce", 8, iteration=it))
            b.add(r, PcontrolOp(it))
    return b.finish(iterations)


def phased_offload_app(
    n_ranks: int = 4,
    iterations: int = 2,
    spread: float = 1.4,
    cpu_seconds: float = 0.6,
    seed: int = 11,
) -> Application:
    """Alternating serial-heavy and offload-friendly phases per iteration.

    The headline workload for CPU<->GPU power shifting: each iteration is
    a serial-heavy phase (low Amdahl fraction — CPU territory) and a
    massively parallel phase (GPU territory on a heterogeneous node),
    separated by allreduces so the phases never overlap across ranks.
    During the serial phase every useful watt belongs on the CPUs; during
    the offload phase, on the GPUs.  A static per-device cap split wastes
    the idle side's budget in both phases, while an aggregate node cap
    lets the LP move the whole budget back and forth — the gap between
    the two is the value of dynamic cross-device shifting.  On the legacy
    homogeneous node the workload still runs (both phases are plain CPU
    kernels), so the same scenario is comparable across nodes.
    """
    rng = np.random.default_rng(seed)
    factors = np.linspace(1.0, spread, n_ranks)
    rng.shuffle(factors)
    serial = TaskKernel(
        cpu_seconds=cpu_seconds, mem_seconds=0.3 * cpu_seconds,
        parallel_fraction=0.4, mem_intensity=0.4, name="serial-phase",
    )
    offload = TaskKernel(
        cpu_seconds=2.5 * cpu_seconds, mem_seconds=0.1 * cpu_seconds,
        parallel_fraction=0.995, mem_intensity=0.2, name="offload-phase",
    )
    b = WorkloadBuilder(name="phased-offload", n_ranks=n_ranks)
    for it in range(iterations):
        for r in range(n_ranks):
            b.add(r, ComputeOp(serial.scaled(float(factors[r])), it,
                               label="serial"))
            b.add(r, CollectiveOp("allreduce", 8, iteration=it))
            b.add(r, ComputeOp(
                offload.scaled(float(factors[(r + 1) % n_ranks])), it,
                label="offload",
            ))
            b.add(r, CollectiveOp("allreduce", 8, iteration=it))
            b.add(r, PcontrolOp(it))
    return b.finish(iterations)


def random_application(
    n_ranks: int = 3,
    iterations: int = 2,
    seed: int = 0,
    p_p2p: float = 0.5,
    min_cpu_s: float = 0.05,
    max_cpu_s: float = 1.0,
) -> Application:
    """A random but deadlock-free program for property-based testing.

    Per iteration each rank computes; with probability ``p_p2p`` a random
    ordered pair exchanges one blocking message (send posted before the
    receive in the global construction order, so execution cannot
    deadlock); every iteration ends with an allreduce + Pcontrol.
    """
    rng = np.random.default_rng(seed)
    b = WorkloadBuilder(name=f"random-{seed}", n_ranks=n_ranks)
    for it in range(iterations):
        for r in range(n_ranks):
            kernel = TaskKernel(
                cpu_seconds=float(rng.uniform(min_cpu_s, max_cpu_s)),
                mem_seconds=float(rng.uniform(0.0, 0.3 * max_cpu_s)),
                parallel_fraction=float(rng.uniform(0.8, 0.999)),
                mem_intensity=float(rng.uniform(0.0, 0.8)),
                activity=float(rng.uniform(0.7, 1.4)),
                name=f"rand{it}-{r}",
            )
            b.add(r, ComputeOp(kernel, it))
        if n_ranks >= 2 and rng.random() < p_p2p:
            src, dst = rng.choice(n_ranks, size=2, replace=False)
            size = int(rng.integers(64, 1 << 20))
            b.add(int(src), SendOp(dst=int(dst), size_bytes=size, iteration=it))
            b.add(int(dst), RecvOp(src=int(src), iteration=it))
        for r in range(n_ranks):
            b.add(r, CollectiveOp("allreduce", 8, iteration=it))
            b.add(r, PcontrolOp(it))
    return b.finish(iterations)
