"""Static schedule validation (paper §6.1, without the replay).

Replay validation (:func:`repro.simulator.replay.replay_schedule`) executes
a schedule and checks the observed power; this module verifies a
:class:`PowerSchedule` *analytically* against its trace:

* **assignment validity** — every task assigned, every mixture point on
  the task's (convex or full) Pareto frontier, fractions normalized;
* **precedence feasibility** — the scheduled vertex times admit the
  assigned durations on every edge;
* **event power** — at every event of the schedule's own timing, the sum
  of active task powers (slack charged at task power, as in the LP)
  respects the cap.

The two validators are complementary: the static one pinpoints *which*
constraint a bad schedule violates; the replay one confirms end-to-end
realizability with overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dag.analysis import DagSchedule
from ..simulator.trace import Trace
from .events import build_event_structure
from .schedule import PowerSchedule

__all__ = ["ValidationReport", "validate_schedule"]


@dataclass
class ValidationReport:
    """Outcome of static validation; ``ok`` iff no violations recorded."""

    violations: list[str] = field(default_factory=list)
    peak_event_power_w: float = 0.0
    max_precedence_gap_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        status = "OK" if self.ok else f"{len(self.violations)} violations"
        return (
            f"schedule validation: {status}; peak event power "
            f"{self.peak_event_power_w:.1f} W; worst precedence gap "
            f"{self.max_precedence_gap_s:.3e} s"
        )


def validate_schedule(
    trace: Trace,
    schedule: PowerSchedule,
    power_tol_rel: float = 1e-6,
    time_tol_s: float = 1e-6,
    max_reported: int = 20,
) -> ValidationReport:
    """Statically verify a schedule against its trace.

    Returns a report; callers that require validity should assert
    ``report.ok``.  At most ``max_reported`` violations are itemized (the
    count in ``summary()`` reflects only those recorded).
    """
    report = ValidationReport()
    graph = trace.graph

    def note(msg: str) -> None:
        if len(report.violations) < max_reported:
            report.add(msg)

    # --- assignment validity -----------------------------------------
    missing = set(trace.task_edges) - set(schedule.assignments)
    for ref in sorted(missing, key=lambda r: (r.rank, r.seq)):
        note(f"task {ref} has no assignment")
    for ref, a in schedule.assignments.items():
        if ref not in trace.task_edges:
            note(f"assignment for unknown task {ref}")
            continue
        allowed = {
            (p.config, round(p.duration_s, 12), round(p.power_w, 12))
            for p in trace.pareto[a.edge_id] + trace.frontiers[a.edge_id]
        }
        for p, f in a.mixture:
            key = (p.config, round(p.duration_s, 12), round(p.power_w, 12))
            if key not in allowed:
                note(
                    f"task {ref}: mixture point {p.config.describe()} not on "
                    "the task's frontier"
                )

    if missing:
        return report  # timing checks need complete assignments

    # --- precedence feasibility ---------------------------------------
    durations = np.zeros(graph.n_edges)
    for e in graph.message_edges():
        durations[e.id] = e.duration_s
    for ref, a in schedule.assignments.items():
        durations[a.edge_id] = a.duration_s

    v = schedule.vertex_times
    if len(v) != graph.n_vertices:
        note(
            f"vertex_times has {len(v)} entries for {graph.n_vertices} "
            "vertices"
        )
        return report
    worst = 0.0
    for e in graph.edges:
        gap = (v[e.src] + durations[e.id]) - v[e.dst]
        worst = max(worst, float(gap))
        if gap > time_tol_s:
            note(
                f"edge {e.id} ({e.kind.value}): needs {durations[e.id]:.6f}s "
                f"but vertices allow {v[e.dst] - v[e.src]:.6f}s"
            )
    report.max_precedence_gap_s = worst

    # --- event power under the schedule's own timing -------------------
    timed = DagSchedule(
        vertex_times=np.asarray(v, dtype=float),
        edge_durations=durations,
        edge_starts=np.array([v[e.src] for e in graph.edges]),
        makespan=float(np.max(v)),
    )
    events = build_event_structure(graph, initial=timed)
    peak = 0.0
    for vid, act in events.active.items():
        total = sum(
            schedule.assignments[trace.edge_refs[e]].power_w for e in act
        )
        peak = max(peak, total)
        if total > schedule.cap_w * (1 + power_tol_rel):
            note(
                f"event at vertex {vid} (t={timed.vertex_times[vid]:.4f}s) "
                f"draws {total:.1f} W over cap {schedule.cap_w:.1f} W"
            )
    report.peak_event_power_w = peak
    return report
