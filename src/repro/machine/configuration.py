"""Configurations: (DVFS frequency, thread count) operating points.

A configuration is the per-task control knob of the whole paper — the LP
and the runtimes all choose one (or a convex mixture) per task.  This
module enumerates the full configuration space of a socket and evaluates a
task's (duration, power) at each point, producing the raw scatter of the
paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cpu import CpuSpec, XEON_E5_2670
from .performance import TaskKernel, TaskTimeModel
from .power import SocketPowerModel

__all__ = ["Configuration", "ConfigPoint", "enumerate_configurations", "measure_task"]


@dataclass(frozen=True, order=True)
class Configuration:
    """One operating point: P-state frequency, OpenMP threads, duty cycle.

    ``duty`` is 1.0 except when RAPL falls back to clock modulation; the LP
    never schedules modulated configurations (they are strictly dominated),
    but the Static baseline can be forced into them.

    ``device`` qualifies the operating point with the device it belongs to
    on a heterogeneous node (see :mod:`repro.machine.device`).  The empty
    string is the legacy homogeneous socket, so every pre-existing
    ``Configuration(f, n)`` literal keeps its meaning, ordering, and
    equality.  ``device`` sorts last, which keeps ordering stable across
    device kinds: points that tie on (freq, threads, duty) break the tie
    on the device id rather than on construction order.
    """

    freq_ghz: float
    threads: int
    duty: float = 1.0
    device: str = ""

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ValueError(f"freq_ghz must be positive, got {self.freq_ghz}")
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if not (0.0 < self.duty <= 1.0):
            raise ValueError(f"duty must be in (0,1], got {self.duty}")

    @property
    def effective_freq_ghz(self) -> float:
        return self.freq_ghz * self.duty

    def describe(self) -> str:
        """Human-readable form, device-tagged when not the legacy CPU."""
        mod = "" if self.duty == 1.0 else f" @ {self.duty:.0%} duty"
        tag = f"[{self.device}] " if self.device else ""
        return f"{tag}{self.freq_ghz:.1f} GHz x {self.threads}t{mod}"


@dataclass(frozen=True)
class ConfigPoint:
    """A configuration together with its measured duration and power.

    These are what the tracing library reports per task and what the LP
    consumes as the (d_ij, p_ij) coefficients.
    """

    config: Configuration
    duration_s: float
    power_w: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")
        if self.power_w <= 0:
            raise ValueError(f"power must be positive, got {self.power_w}")

    def dominates(self, other: "ConfigPoint") -> bool:
        """Pareto dominance in (time, power): no worse in both, better in one."""
        return (
            self.duration_s <= other.duration_s
            and self.power_w <= other.power_w
            and (
                self.duration_s < other.duration_s or self.power_w < other.power_w
            )
        )


def enumerate_configurations(
    spec: CpuSpec = XEON_E5_2670, include_modulation: bool = False
) -> list[Configuration]:
    """All admissible configurations of a socket.

    Ordered by descending frequency then descending threads, mirroring the
    paper's Table 1 listing.  Clock-modulated points (below the lowest
    P-state, max threads only) are appended when requested.
    """
    configs = [
        Configuration(f, n)
        for f in spec.pstates
        for n in reversed(spec.thread_counts())
    ]
    if include_modulation:
        configs.extend(
            Configuration(spec.fmin_ghz, spec.cores, duty) for duty in spec.duty_cycles
        )
    return configs


def measure_task(
    kernel: TaskKernel,
    config: Configuration,
    power_model: SocketPowerModel,
    time_model: TaskTimeModel | None = None,
) -> ConfigPoint:
    """Evaluate one task at one configuration on one socket.

    This is the simulation stand-in for running the task under RAPL
    instrumentation; the runtime's exploration phase and the offline tracer
    both go through here.
    """
    tm = time_model if time_model is not None else TaskTimeModel(power_model.spec)
    duration = tm.duration(kernel, config.freq_ghz, config.threads, config.duty)
    power = power_model.power(
        config.freq_ghz,
        config.threads,
        activity=kernel.activity,
        mem_intensity=kernel.mem_intensity,
        duty=config.duty,
    )
    return ConfigPoint(config=config, duration_s=duration, power_w=power)


def measure_task_space(
    kernel: TaskKernel,
    power_model: SocketPowerModel,
    spec: CpuSpec | None = None,
    include_modulation: bool = False,
) -> list[ConfigPoint]:
    """Measure a task across the entire configuration space (Figure 1 data)."""
    cpu = spec if spec is not None else power_model.spec
    tm = TaskTimeModel(cpu)
    return [
        measure_task(kernel, cfg, power_model, tm)
        for cfg in enumerate_configurations(cpu, include_modulation)
    ]
