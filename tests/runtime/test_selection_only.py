"""Tests for configuration-selection-only (no reallocation) — paper §6."""

import pytest

from repro.machine import sample_socket_efficiencies, SocketPowerModel
from repro.runtime import (
    ConductorConfig,
    ConductorPolicy,
    SelectionOnlyPolicy,
    StaticPolicy,
)
from repro.simulator import Engine, TaskRef, job_power_timeline
from repro.workloads import WorkloadSpec, imbalanced_collective_app, make_lulesh


@pytest.fixture
def models():
    eff = sample_socket_efficiencies(4, seed=9)
    return [SocketPowerModel(efficiency=float(e)) for e in eff]


class TestSelectionOnlyPolicy:
    def test_validation(self, models):
        app = imbalanced_collective_app(n_ranks=4, iterations=2)
        with pytest.raises(ValueError):
            SelectionOnlyPolicy(models, 0.0, app)

    def test_uniform_budget(self, models):
        app = imbalanced_collective_app(n_ranks=4, iterations=2)
        policy = SelectionOnlyPolicy(models, 120.0, app)
        assert policy.budget_w == pytest.approx(30.0)

    def test_no_pcontrol_overhead(self, models):
        app = imbalanced_collective_app(n_ranks=4, iterations=2)
        policy = SelectionOnlyPolicy(models, 120.0, app)
        assert policy.on_pcontrol(0, []) == 0.0

    def test_respects_budget(self, models, kernel):
        app = imbalanced_collective_app(n_ranks=4, iterations=2)
        policy = SelectionOnlyPolicy(models, 120.0, app)
        cfg = policy.configure(TaskRef(0, 0), kernel, 0, None)
        power = models[0].power(cfg.freq_ghz, cfg.threads, kernel.activity,
                                kernel.mem_intensity, cfg.duty)
        assert power <= 30.0 + 1e-9 or cfg.duty < 1.0

    def test_job_cap_respected(self, models):
        app = imbalanced_collective_app(n_ranks=4, iterations=6)
        policy = SelectionOnlyPolicy(models, 120.0, app)
        res = Engine(models).run(app, policy)
        tl = job_power_timeline(res, models, slack_mode="idle")
        assert tl.max_power() <= 120.0 * 1.001


class TestSelectionVsConductor:
    """Paper §6: selection-only has lower overhead but lower performance
    than Conductor — the difference is the reallocation step."""

    def test_selection_captures_lulesh_gain(self, models):
        """LULESH's gain is thread selection: selection-only gets it."""
        spec = WorkloadSpec(n_ranks=4, iterations=8, seed=3)
        app = make_lulesh(spec)
        engine = Engine(models)
        job_cap = 4 * 50.0
        t_static = engine.run(app, StaticPolicy(models, job_cap)).makespan_s
        t_sel = engine.run(
            app, SelectionOnlyPolicy(models, job_cap, app)
        ).makespan_s
        assert t_sel < t_static * 0.9  # >10% from thread choice alone

    def test_reallocation_needed_for_imbalance(self, models):
        """An imbalanced app: Conductor (with reallocation) beats
        selection-only in steady state."""
        app = imbalanced_collective_app(n_ranks=4, iterations=16, spread=1.6)
        engine = Engine(models)
        job_cap = 4 * 28.0
        res_sel = engine.run(app, SelectionOnlyPolicy(models, job_cap, app))
        cond = ConductorPolicy(
            models, job_cap, app,
            config=ConductorConfig(realloc_period=2, step_w=4.0,
                                   measurement_noise=0.0),
        )
        res_cond = engine.run(app, cond)

        def tail(res):
            start = min(
                r.start_s for r in res.records if r.iteration >= 10
            )
            return res.makespan_s - start

        assert tail(res_cond) < tail(res_sel)
