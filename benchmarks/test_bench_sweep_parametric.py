"""Parametric cap-sweep benchmark: one assembled model, many caps.

The paper's Figures 9-15 re-solve the same trace at dozens of caps.  The
rebuild path pays trace -> events -> IR -> LP compilation -> sparse
assembly at every cap; the parametric path
(:class:`repro.core.ParametricCapSolver`) pays them once and re-solves
with an updated RHS.  This benchmark pins both properties the refactor
claims:

* **speed** — the parametric dense sweep is at least 2x faster than the
  per-cap rebuild on the same grid (measured as min over interleaved
  repetitions, so a scheduler hiccup on either side cannot fake or mask
  the speedup);
* **identity** — the two paths return byte-identical makespans and
  primal vectors (the model handed to HiGHS is the same, and HiGHS is
  deterministic).
"""

import time

import numpy as np

from repro.core import (
    ParametricCapSolver,
    round_schedule,
    solve_cap_sweep,
    solve_fixed_order_lp,
)
from repro.experiments.runner import make_power_models
from repro.simulator import (
    job_power_timeline,
    replay_schedule_sweep,
    trace_application,
)
from repro.simulator.engine import Engine
from repro.simulator.replay import ReplayPolicy
from repro.workloads import WorkloadSpec, make_bt

#: Dense grid, as in a production figure sweep.
N_CAPS = 50
#: Interleaved timing repetitions per path.
N_REPS = 3


def _bt_trace(n_ranks=8, iterations=2):
    app = make_bt(WorkloadSpec(n_ranks=n_ranks, iterations=iterations, seed=1))
    return trace_application(app, make_power_models(n_ranks))


def _cap_grid(n_ranks=8):
    return [float(c) * n_ranks for c in np.linspace(22.0, 70.0, N_CAPS)]


def test_parametric_sweep_2x_and_byte_identical(benchmark):
    trace = _bt_trace()
    caps = _cap_grid()

    t_rebuild, t_parametric = [], []
    rebuild = parametric = None
    for _ in range(N_REPS):
        t0 = time.perf_counter()
        rebuild = solve_cap_sweep(trace, caps, parametric=False)
        t_rebuild.append(time.perf_counter() - t0)

        t0 = time.perf_counter()
        parametric = solve_cap_sweep(trace, caps, parametric=True)
        t_parametric.append(time.perf_counter() - t0)

    # Identity first: same feasibility verdicts, bit-equal makespans and
    # primal vectors at every cap.
    assert parametric.makespans() == rebuild.makespans()
    for cap in caps:
        a, b = parametric.results[cap], rebuild.results[cap]
        assert np.array_equal(a.solution.x, b.solution.x)

    speedup = min(t_rebuild) / min(t_parametric)
    assert speedup >= 2.0, (
        f"parametric sweep only {speedup:.2f}x faster "
        f"({min(t_parametric):.2f}s vs {min(t_rebuild):.2f}s rebuild)"
    )

    # Record the parametric path for the regression baseline.
    result = benchmark.pedantic(
        solve_cap_sweep, args=(trace, caps), rounds=1, iterations=1
    )
    assert result.feasible_caps()


def _assignment(trace, lp):
    disc = round_schedule(trace, lp.schedule)
    return {ref: a.mixture[0][0].config for ref, a in disc.assignments.items()}


def _ref_pipeline(trace, app_run, pms, caps):
    """PR-5 baseline: per-cap rebuild solve, scalar replay, reference
    timeline accounting.  One ``(lp makespan, replay makespan, peak W)``
    tuple per cap, ``None`` where the LP is infeasible."""
    out = []
    for cap in caps:
        lp = solve_fixed_order_lp(trace, cap, assembly="reference")
        if not lp.feasible:
            out.append(None)
            continue
        asg = _assignment(trace, lp)
        engine = Engine(pms, vectorized=False)
        result = engine.run(app_run, ReplayPolicy(asg))
        tl = job_power_timeline(result, pms, reference=True)
        out.append((lp.makespan_s, result.makespan_s, tl.max_power()))
    return out


def _vec_pipeline(trace, app_run, pms, caps):
    """Vectorized path: parametric LP re-solves, one sweep-batched replay
    for every feasible cap, array-built timelines."""
    solver = ParametricCapSolver(trace)
    asgs, kept, lp_mk = [], [], {}
    for cap in caps:
        lp = solver.solve(cap)
        if not lp.feasible:
            lp_mk[cap] = None
            continue
        lp_mk[cap] = lp.makespan_s
        asgs.append(_assignment(trace, lp))
        kept.append(cap)
    outcomes = replay_schedule_sweep(app_run, asgs, pms, kept)
    out, i = [], 0
    for cap in caps:
        if lp_mk[cap] is None:
            out.append(None)
            continue
        o = outcomes[i]
        i += 1
        out.append((lp_mk[cap], o.result.makespan_s, o.peak_power_w))
    return out


def test_end_to_end_sweep_3x_and_byte_identical(benchmark):
    """Full figure-sweep pipeline (LP solve -> rounding -> replay ->
    power verification) at 50 caps: the vectorized composition must be at
    least 3x faster than the PR-5 per-cap baseline and produce
    byte-identical results at every cap.

    The LP is solved on a short trace (the paper's profiling run) while
    the replay executes a longer production run of the same workload, so
    the replay/accounting side carries realistic weight next to the
    solver floor (HiGHS deliberately cold-starts each re-solve to keep
    parametric results bit-identical; that floor is shared by both
    paths).
    """
    n_ranks = 8
    app_lp = make_bt(WorkloadSpec(n_ranks=n_ranks, iterations=2, seed=1))
    app_run = make_bt(WorkloadSpec(n_ranks=n_ranks, iterations=60, seed=1))
    pms = make_power_models(n_ranks)
    trace = trace_application(app_lp, pms)
    caps = _cap_grid(n_ranks)

    # Warm model/solver caches so neither path pays first-touch costs.
    _ref_pipeline(trace, app_run, pms, caps[:2])
    _vec_pipeline(trace, app_run, pms, caps[:2])

    t_ref, t_vec = [], []
    ref = vec = None
    for _ in range(N_REPS):
        t0 = time.perf_counter()
        ref = _ref_pipeline(trace, app_run, pms, caps)
        t_ref.append(time.perf_counter() - t0)

        t0 = time.perf_counter()
        vec = _vec_pipeline(trace, app_run, pms, caps)
        t_vec.append(time.perf_counter() - t0)

    # Identity first: same feasibility pattern, bit-equal LP makespans,
    # replay makespans, and peak powers at every cap.
    assert len(ref) == len(vec) == N_CAPS
    for cap, a, b in zip(caps, ref, vec):
        assert a == b, f"cap {cap}: ref={a} vec={b}"

    speedup = min(t_ref) / min(t_vec)
    assert speedup >= 3.0, (
        f"end-to-end sweep only {speedup:.2f}x faster "
        f"({min(t_vec):.2f}s vs {min(t_ref):.2f}s baseline)"
    )

    # Record the vectorized pipeline for the regression baseline.
    result = benchmark.pedantic(
        _vec_pipeline, args=(trace, app_run, pms, caps), rounds=1, iterations=1
    )
    assert any(r is not None for r in result)


def test_parametric_solver_reuse(benchmark):
    """Per-cap cost on an already-frozen model (the sweep's steady state)."""
    trace = _bt_trace()
    solver = ParametricCapSolver(trace)
    solver.solve(400.0)  # warm: first HiGHS call passes the model once

    result = benchmark.pedantic(
        solver.solve, args=(320.0,), rounds=3, iterations=1
    )
    assert result.feasible
    assert solver.n_solves == 4
