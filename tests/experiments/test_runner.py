"""Tests for the experiment runner (small-scale comparisons)."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    improvement_pct,
    make_power_models,
    run_comparison,
    sweep_caps,
)
from repro.experiments.runner import ComparisonResult


class TestImprovementPct:
    def test_faster_wins(self):
        assert improvement_pct(2.0, 1.0) == pytest.approx(100.0)

    def test_equal(self):
        assert improvement_pct(1.0, 1.0) == pytest.approx(0.0)

    def test_regression_negative(self):
        assert improvement_pct(0.9, 1.0) == pytest.approx(-10.0)

    def test_none_propagates(self):
        assert improvement_pct(None, 1.0) is None
        assert improvement_pct(1.0, None) is None


class TestExperimentConfig:
    def test_unknown_benchmark(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            ExperimentConfig(benchmark="hpl")

    def test_window_bounds(self):
        with pytest.raises(ValueError):
            ExperimentConfig(benchmark="comd", run_iterations=5,
                             discard_iterations=5)
        with pytest.raises(ValueError):
            ExperimentConfig(benchmark="comd", run_iterations=10,
                             discard_iterations=3, steady_window=8)


class TestMakePowerModels:
    def test_seeded(self):
        a = make_power_models(8, efficiency_seed=1)
        b = make_power_models(8, efficiency_seed=1)
        assert [m.efficiency for m in a] == [m.efficiency for m in b]
        assert len(a) == 8


SMALL = ExperimentConfig(
    benchmark="comd", n_ranks=4, run_iterations=10, lp_iterations=2,
    discard_iterations=3, steady_window=5,
)


class TestRunComparison:
    def test_lp_is_lower_bound(self):
        r = run_comparison(SMALL, 40.0)
        assert r.schedulable and r.feasible
        assert r.lp_s <= r.static_s * (1 + 1e-9)
        assert r.lp_s <= r.conductor_s * (1 + 1e-9)

    def test_improvement_properties(self):
        r = run_comparison(SMALL, 40.0)
        assert r.lp_vs_static_pct >= -1e-9
        assert r.job_cap_w == pytest.approx(160.0)

    def test_discrete_schedule_optional(self):
        r = run_comparison(SMALL, 40.0, include_discrete=True)
        assert r.lp_discrete_s is not None
        assert r.lp_discrete_s == pytest.approx(r.lp_s, rel=0.15)

    def test_unschedulable_cap(self):
        cfg = ExperimentConfig(
            benchmark="sp", n_ranks=4, run_iterations=10, lp_iterations=2,
            discard_iterations=3, steady_window=5,
        )
        r = run_comparison(cfg, 30.0)  # SP min cap is 40 W/socket
        assert not r.schedulable
        assert r.static_s is None and r.lp_s is None
        assert r.lp_vs_static_pct is None


class TestSweep:
    def test_sweep_shapes(self):
        results = sweep_caps(SMALL, (40.0, 60.0))
        assert [r.cap_per_socket_w for r in results] == [40.0, 60.0]
        assert all(isinstance(r, ComparisonResult) for r in results)

    def test_lp_monotone_over_sweep(self):
        results = sweep_caps(SMALL, (40.0, 60.0, 80.0))
        spans = [r.lp_s for r in results if r.feasible]
        assert all(b <= a + 1e-9 for a, b in zip(spans, spans[1:]))
