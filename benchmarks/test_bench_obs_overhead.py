"""Observability overhead: tracing disabled must be effectively free.

The ``repro.obs`` instrumentation gates every emission site behind one
contextvar read (see ``repro.obs.recorder``), so a run without an active
:class:`TraceRecorder` should time indistinguishably from the
pre-instrumentation code — the committed ``benchmarks/baseline.json``
predates the instrumentation, so CI's regression gate doubles as the
cross-version overhead guard.  This file adds the in-process guard:

* a timed quick comparison with tracing *off* (the default path every
  figure and benchmark takes), and
* an interleaved off-vs-on measurement asserting that even with a
  recorder active — every task, wait, collective, solve, and counter
  event buffered — the comparison stays within a small factor, which
  bounds the disabled-path cost far below the 2% budget.
"""

from __future__ import annotations

import time

from conftest import engage

from repro.experiments.runner import ExperimentConfig, run_comparison
from repro.obs.recorder import TraceRecorder, use_recorder

#: The CLI's --quick comparison (see repro.experiments.cli._run_config).
QUICK = ExperimentConfig(
    benchmark="comd", n_ranks=4, run_iterations=12, lp_iterations=2,
    steady_window=6,
)
CAP_W = 50.0
N_REPS = 5


def _cell():
    return run_comparison(QUICK, CAP_W)


def test_quick_comparison_tracing_off_speed(benchmark):
    """The default, uninstrumented-feeling path (no recorder active)."""
    _cell()  # warm the per-benchmark shared state (trace, frontiers, IR)
    benchmark(_cell)


def test_tracing_on_overhead_is_bounded(benchmark):
    """Recorder active: full event capture stays cheap.

    Interleaved min-of-N on both sides, so a scheduler hiccup cannot
    fake or mask the ratio.  The bound is deliberately loose (2x) to be
    hiccup-proof; the recorded ratio is typically a few percent, and the
    tracing-*off* overhead this transitively bounds is far smaller still
    (one contextvar read per site, no event construction).
    """
    _cell()  # warm shared state
    t_off: list[float] = []
    t_on: list[float] = []
    for _ in range(N_REPS):
        t0 = time.perf_counter()
        _cell()
        t_off.append(time.perf_counter() - t0)

        recorder = TraceRecorder()
        t0 = time.perf_counter()
        with use_recorder(recorder):
            _cell()
        t_on.append(time.perf_counter() - t0)
        assert len(recorder) > 0  # the traced side really recorded

    assert min(t_on) <= 2.0 * min(t_off) + 1e-3, (
        f"tracing-on {min(t_on):.4f}s vs off {min(t_off):.4f}s"
    )
    engage(benchmark)
