"""The in-process transport: every task runs in the calling process.

No pickling, no subprocesses, no threads — a submitted task simply runs
when its result is awaited.  That makes :class:`InlineBackend` the
transport for tests (unpicklable closures work), for debugging (plain
stack traces straight into the task), and for the service dispatcher's
``--backend inline`` smoke mode, while still exercising the runner's
full retry/outcome machinery.

Because the task runs on the caller's thread inside the caller's
observability context, payload snapshots come back ``None`` (there is
nothing to merge — the parent's telemetry, recorder, audit, metrics,
and profile saw everything live) and deadlines cannot be enforced: a
task that hangs hangs the caller.  Worker loss cannot happen, so
:meth:`InlineBackend.recover` and worker-death signaling are no-ops.
"""

from __future__ import annotations

from .base import ExecBackend, TaskPayload, TaskSpec

__all__ = ["InlineBackend"]


class _InlineHandle:
    """One submitted-but-not-yet-run task (or its settled payload)."""

    __slots__ = ("spec", "done", "payload")

    def __init__(self, spec: TaskSpec) -> None:
        self.spec = spec
        self.done = False
        self.payload: TaskPayload | None = None


class InlineBackend(ExecBackend):
    """Serial in-process transport; see the module docstring."""

    in_process = True

    def start(self, n_workers: int) -> None:
        pass

    def submit(self, spec: TaskSpec) -> _InlineHandle:
        return _InlineHandle(spec)

    def result(self, handle: _InlineHandle, timeout_s: float | None) -> TaskPayload:
        # Lazy execution: the task runs here, on the caller's thread, in
        # the caller's observability context — so the payload carries no
        # snapshots to merge.  Task exceptions propagate raw, which is
        # what the runner's retry machinery expects.
        if not handle.done:
            value = handle.spec.fn(handle.spec.item)
            handle.payload = (value, None, None, None, None, None)
            handle.done = True
        return handle.payload

    def cancel(self, handle: _InlineHandle) -> None:
        handle.done = True
        handle.payload = (None, None, None, None, None, None)

    def recover(self) -> None:
        pass

    def needs_resubmit(self, handle: _InlineHandle) -> bool:
        return False

    def shutdown(self) -> None:
        pass
