"""The status document: built valid, validated strictly, CLI-exposed."""

from __future__ import annotations

import json

from repro.scenarios.spec import PolicySpec, ScenarioSpec
from repro.service import (
    STATUS_SCHEMA_VERSION,
    JobQueue,
    build_status_doc,
    render_status_text,
    validate_status_doc,
)


def spec(caps=(40.0, 60.0)) -> ScenarioSpec:
    return ScenarioSpec(
        benchmark="synthetic",
        caps_per_socket_w=caps,
        policies=(PolicySpec("static"), PolicySpec("lp")),
        n_ranks=4,
        run_iterations=8,
        lp_iterations=2,
        discard_iterations=2,
        steady_window=4,
    )


def populated_queue(tmp_path) -> JobQueue:
    queue = JobQueue(tmp_path, quotas={"alice": 4})
    queue.submit_cells(spec(), tenant="alice", priority=2)
    queue.submit_cells(spec(), tenant="alice")  # 2 dedups
    queue.complete(queue.claim_next().job_id)
    return queue


class TestBuildStatusDoc:
    def test_valid_and_json_serializable(self, tmp_path):
        doc = build_status_doc(populated_queue(tmp_path))
        assert validate_status_doc(doc) == []
        round_tripped = json.loads(json.dumps(doc))
        assert validate_status_doc(round_tripped) == []

    def test_counts(self, tmp_path):
        doc = build_status_doc(populated_queue(tmp_path))
        assert doc["schema"] == STATUS_SCHEMA_VERSION
        assert doc["kind"] == "queue-status"
        assert doc["jobs"] == {
            "pending": 1, "running": 0, "done": 1, "failed": 0, "total": 2,
        }
        assert doc["deduped"] == 2
        assert doc["tenants"]["alice"] == {
            "active": 1, "submitted": 4, "quota": 4,
        }

    def test_empty_queue_is_valid(self, tmp_path):
        doc = build_status_doc(JobQueue(tmp_path))
        assert validate_status_doc(doc) == []
        assert doc["jobs"]["total"] == 0 and doc["tenants"] == {}


class TestValidateStatusDoc:
    def test_non_object_is_one_problem(self):
        assert validate_status_doc([1, 2]) == ["status doc is not an object"]

    def test_every_violation_is_reported(self, tmp_path):
        doc = build_status_doc(populated_queue(tmp_path))
        doc["schema"] = 99
        doc["kind"] = "metrics"
        doc["jobs"]["pending"] = -1
        doc["deduped"] = True  # bools are not counts
        problems = validate_status_doc(doc)
        assert len(problems) == 4
        assert any("schema" in p for p in problems)
        assert any("kind" in p for p in problems)
        assert any("jobs.pending" in p for p in problems)
        assert any("deduped" in p for p in problems)

    def test_total_must_equal_the_state_sum(self, tmp_path):
        doc = build_status_doc(populated_queue(tmp_path))
        doc["jobs"]["total"] = 7
        assert any("states sum" in p for p in validate_status_doc(doc))

    def test_tenant_entries_are_checked(self, tmp_path):
        doc = build_status_doc(populated_queue(tmp_path))
        doc["tenants"]["alice"]["active"] = "one"
        doc["tenants"]["alice"]["quota"] = -3
        doc["tenants"]["mallory"] = "nope"
        problems = validate_status_doc(doc)
        assert len(problems) == 3


class TestRenderStatusText:
    def test_human_lines(self, tmp_path):
        text = render_status_text(build_status_doc(populated_queue(tmp_path)))
        assert "1 pending" in text and "1 done" in text
        assert "2 deduped" in text
        assert "tenant alice: 1 active / quota 4" in text


class TestCli:
    def test_status_json_is_the_validated_document(self, tmp_path, capsys):
        from repro.experiments.cli import main

        queue_dir = tmp_path / "q"
        populated_queue(queue_dir)
        assert main(["status", "--queue", str(queue_dir), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_status_doc(doc) == []
        assert doc["jobs"]["total"] == 2

    def test_status_text_default(self, tmp_path, capsys):
        from repro.experiments.cli import main

        queue_dir = tmp_path / "q"
        populated_queue(queue_dir)
        assert main(["status", "--queue", str(queue_dir)]) == 0
        assert "1 pending" in capsys.readouterr().out

    def test_submit_then_status(self, tmp_path, capsys):
        from repro.experiments.cli import main

        queue_dir = tmp_path / "q"
        rc = main([
            "submit", "--queue", str(queue_dir),
            "--policies", "static,lp", "--caps", "40,60", "--quick",
        ])
        assert rc == 0
        assert "2 new" in capsys.readouterr().out
        assert main(["status", "--queue", str(queue_dir), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_status_doc(doc) == []
        assert doc["jobs"]["pending"] == 2

    def test_submit_over_quota_fails_cleanly(self, tmp_path, capsys):
        from repro.experiments.cli import main

        rc = main([
            "submit", "--queue", str(tmp_path / "q"),
            "--policies", "static,lp", "--caps", "40,60", "--quick",
            "--tenant", "alice", "--quota", "alice=1",
        ])
        assert rc == 1
        assert "exceed quota" in capsys.readouterr().err
