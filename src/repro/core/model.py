"""The shared problem-instance IR all LP/ILP formulations compile from.

The paper's three optimization problems — the fixed-vertex-order LP, the
flow ILP, and the energy-bounding LP — pose different objectives over the
*same* trace-derived structure: vertex-time variables, per-task
configuration simplices over convex frontiers, and precedence rows.
Before this module each formulation re-derived that structure privately
(and ``energy_lp`` reached into ``fixed_order_lp`` for schedule
extraction).  Now a :class:`ProblemInstance` is built **once per trace**
and every formulation compiles its :class:`~.solver.LinearProgram` from
it:

* :func:`build_problem_instance` — trace → IR (event structure, per-task
  frontiers as dense ``(duration, power)`` arrays, vertex anchors);
* :func:`base_model` — the ~80% of rows/columns every formulation shares
  (vertex times, configuration simplex, precedence);
* :func:`extract_schedule` — the public primal-vector → PowerSchedule
  decoder, replacing the former cross-module private import.

``MODEL_LAYER_VERSION`` is part of every solver cache key: bump it when
compilation changes in any way that could alter solutions, and all stale
cached solutions are invalidated automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dag.analysis import frontier_unconstrained_schedule
from ..dag.graph import VertexKind
from ..machine.configuration import ConfigPoint
from ..machine.cpu import XEON_E5_2670
from ..machine.performance import TaskTimeModel
from ..simulator.program import TaskRef
from ..simulator.trace import Trace
from .events import EventStructure, build_event_structure
from .schedule import PowerSchedule, TaskAssignment
from .solver import LinearProgram, LpSolution

__all__ = [
    "MODEL_LAYER_VERSION",
    "CAP_ROW_TAG",
    "TaskFrontier",
    "ProblemInstance",
    "CompiledModel",
    "build_problem_instance",
    "base_model",
    "extract_schedule",
]

#: Version of the model-compilation layer.  Participates in solver cache
#: keys (see :func:`repro.exec.keys.solver_key`): any change to how
#: formulations compile from the IR must bump this so previously cached
#: solutions can never be served against the new model.
#: v3: device-qualified operating points (heterogeneous nodes) — frontier
#: documents gained a device column and the initial schedule of a
#: device-qualified trace is frontier-driven.
#: v4: the energy LP gained optional event-power cap rows (min-energy
#: subject to deadline *and* cap), so energy-lp cache entries keyed
#: against the capless compilation must never satisfy capped solves.
MODEL_LAYER_VERSION = 4

#: Row tag on constraints whose RHS is the job power cap.  Rows carrying
#: this tag are the only part of the fixed-order model that changes
#: between caps, which is what makes parametric cap sweeps possible.
CAP_ROW_TAG = "cap"


@dataclass(frozen=True)
class TaskFrontier:
    """One task's frontier as parallel point/array views.

    ``points`` preserves the full :class:`ConfigPoint` objects (schedule
    extraction needs the configurations); ``durations``/``powers`` are the
    dense coefficient arrays compilation loops consume.
    """

    edge_id: int
    points: tuple[ConfigPoint, ...]
    durations: np.ndarray
    powers: np.ndarray

    def __len__(self) -> int:
        return len(self.points)


@dataclass(frozen=True)
class ProblemInstance:
    """Everything the formulations need, derived once from a trace.

    Attributes
    ----------
    trace:
        The traced application (kept for TaskRef correspondence and
        fingerprinting; formulations should consume the fields below).
    events:
        Fixed event order + activity sets (also carries the
        power-unconstrained initial schedule in ``events.initial``).
    convex:
        Per-compute-edge convex frontiers — the continuous formulations'
        configuration sets.
    pareto:
        Per-compute-edge full Pareto sets — the discrete MILP's sets.
    init_id / fin_id:
        Vertex ids of MPI_Init and MPI_Finalize (objective anchors).
    """

    trace: Trace
    events: EventStructure
    convex: dict[int, TaskFrontier]
    pareto: dict[int, TaskFrontier]
    init_id: int
    fin_id: int
    version: int = MODEL_LAYER_VERSION

    @property
    def graph(self):
        return self.trace.graph

    def frontier_family(self, discrete: bool = False) -> dict[int, TaskFrontier]:
        """The frontier set a formulation compiles against (paper §3.2:
        the discrete variant selects one configuration outright, so the
        larger full Pareto set is strictly better there)."""
        return self.pareto if discrete else self.convex

    def unconstrained_makespan_s(self) -> float:
        """Makespan of the power-unconstrained initial schedule."""
        return float(self.events.initial.makespan)


def _as_frontiers(raw: dict[int, list[ConfigPoint]]) -> dict[int, TaskFrontier]:
    out: dict[int, TaskFrontier] = {}
    for edge_id, points in raw.items():
        if not points:
            raise ValueError(f"task edge {edge_id} has an empty frontier")
        out[edge_id] = TaskFrontier(
            edge_id=edge_id,
            points=tuple(points),
            durations=np.array([p.duration_s for p in points]),
            powers=np.array([p.power_w for p in points]),
        )
    return out


def build_problem_instance(
    trace: Trace,
    events: EventStructure | None = None,
    time_model: TaskTimeModel | None = None,
) -> ProblemInstance:
    """Build the shared IR for a traced application.

    ``events`` lets callers that already derived the (trace-only) event
    structure share it; otherwise it is computed from the paper's default
    power-unconstrained initial schedule.  Device-qualified traces (from
    heterogeneous nodes) derive that schedule from the traced frontiers —
    their fastest operating point is a per-task device choice that no
    single CPU time model can express; homogeneous traces keep the
    legacy time-model path bit for bit.
    """
    graph = trace.graph
    if events is None:
        if time_model is None and trace.uses_devices:
            events = build_event_structure(
                graph, initial=frontier_unconstrained_schedule(graph, trace.frontiers)
            )
        else:
            tm = time_model if time_model is not None else TaskTimeModel(XEON_E5_2670)
            events = build_event_structure(graph, tm)
    return ProblemInstance(
        trace=trace,
        events=events,
        convex=_as_frontiers(trace.frontiers),
        pareto=_as_frontiers(trace.pareto),
        init_id=graph.find_vertex(VertexKind.INIT).id,
        fin_id=graph.find_vertex(VertexKind.FINALIZE).id,
    )


@dataclass(frozen=True)
class _ColumnArrays:
    """Variable layout of a compiled model as ready-to-index arrays."""

    vertices: np.ndarray
    tasks: dict[int, np.ndarray]


@dataclass(frozen=True)
class _ExtractLayout:
    """Flattened per-task decode layout (cached; extraction hot path).

    Task ``t`` (in ``items`` order) owns the slice
    ``indptr[t]:indptr[t+1]`` of the concatenated arrays: its solution
    columns, and the frontier duration/power coefficients aligned with
    them.  Lets :func:`extract_schedule` decode every task with a handful
    of whole-solution gathers instead of per-task indexing.
    """

    items: tuple
    all_cols: np.ndarray
    indptr: np.ndarray
    durations: np.ndarray
    powers: np.ndarray


@dataclass
class CompiledModel:
    """A formulation compiled from the IR, ready to solve and decode.

    Ties the :class:`~.solver.LinearProgram` to the variable layout the
    compilation chose, so :func:`extract_schedule` can decode any solution
    of this model (including parametric re-solves at other caps).
    """

    instance: ProblemInstance
    lp: LinearProgram
    v_idx: list[int]
    c_idx: dict[int, list[int]]
    frontiers: dict[int, TaskFrontier]
    formulation: str
    kind: str = "continuous"
    cap_w: float | None = None
    solver_info: dict = field(default_factory=dict)
    _columns: "_ColumnArrays | None" = field(
        default=None, repr=False, compare=False
    )
    _layout: "_ExtractLayout | None" = field(
        default=None, repr=False, compare=False
    )

    @property
    def fin_id(self) -> int:
        return self.instance.fin_id

    def column_arrays(self) -> "_ColumnArrays":
        """The variable layout as index arrays (cached; decode hot path)."""
        if self._columns is None:
            self._columns = _ColumnArrays(
                vertices=np.asarray(self.v_idx),
                tasks={e: np.asarray(c) for e, c in self.c_idx.items()},
            )
        return self._columns

    def extract_layout(self) -> "_ExtractLayout":
        """Flattened task decode layout (cached; see :class:`_ExtractLayout`)."""
        if self._layout is None:
            cols = self.column_arrays()
            items = tuple(self.instance.trace.task_edges.items())
            per_task = [cols.tasks[edge_id] for _, edge_id in items]
            widths = np.array([len(a) for a in per_task], dtype=np.int64)
            self._layout = _ExtractLayout(
                items=items,
                all_cols=(
                    np.concatenate(per_task)
                    if per_task
                    else np.empty(0, dtype=np.int64)
                ),
                indptr=np.concatenate([[0], np.cumsum(widths)]),
                durations=(
                    np.concatenate(
                        [self.frontiers[e].durations for _, e in items]
                    )
                    if items
                    else np.empty(0)
                ),
                powers=(
                    np.concatenate([self.frontiers[e].powers for _, e in items])
                    if items
                    else np.empty(0)
                ),
            )
        return self._layout

    def freeze(self):
        """Assemble once for parametric re-solve (see FrozenProgram)."""
        return self.lp.freeze()


def base_model(
    instance: ProblemInstance,
    name: str,
    frontiers: dict[int, TaskFrontier] | None = None,
    edge_order: list[int] | None = None,
    integer: bool = False,
    assembly: str = "bulk",
) -> tuple[LinearProgram, list[int], dict[int, list[int]]]:
    """Compile the rows/columns every formulation shares.

    * vertex time variables ``v_k`` with Init pinned at 0 (eq. 2);
    * per-task configuration fractions ``c_{ij}`` with the simplex row
      (eqs. 6, 9 — binary under ``integer`` for the discrete variant);
    * precedence rows (eqs. 3-4, 7) for compute and message edges.

    Returns ``(lp, v_idx, c_idx)``; the caller adds its objective and its
    formulation-specific rows on top.

    ``assembly`` selects the matrix build: ``"bulk"`` (default) appends
    whole constraint blocks as CSR batches; ``"reference"`` keeps the
    original row-by-row build as an oracle.  Both produce the same model
    — same variables, same row order, same assembled matrix — so
    solutions are identical; the tests assert this.
    """
    if assembly not in ("bulk", "reference"):
        raise ValueError(f"assembly must be 'bulk' or 'reference', got {assembly!r}")
    graph = instance.graph
    if frontiers is None:
        frontiers = instance.convex
    order = list(frontiers) if edge_order is None else edge_order
    if assembly == "reference":
        return _base_model_reference(instance, name, frontiers, order, integer)

    lp = LinearProgram(name=name)
    vert_ub = np.full(len(graph.vertices), np.inf)
    for i, vertex in enumerate(graph.vertices):
        if vertex.id == instance.init_id:
            vert_ub[i] = 0.0
    v_idx = lp.add_vars(
        [f"v{v.id}" for v in graph.vertices], lb=0.0, ub=vert_ub
    )

    # Configuration-fraction columns for every task edge, then the one-hot
    # simplex rows as a single block — row order matches the reference
    # build (one row per edge, in ``order``).
    c_idx: dict[int, list[int]] = {}
    for edge_id in order:
        frontier = frontiers[edge_id]
        c_idx[edge_id] = lp.add_vars(
            [f"c{edge_id}_{j}" for j in range(len(frontier))],
            lb=0.0,
            ub=1.0,
            integer=integer,
        )
    c_arr = {e: np.asarray(cols, dtype=np.int64) for e, cols in c_idx.items()}
    if order:
        widths = np.array([len(frontiers[e]) for e in order], dtype=np.int64)
        onehot_cols = np.concatenate([c_arr[e] for e in order])
        lp.add_block(
            indptr=np.concatenate([[0], np.cumsum(widths)]),
            cols=onehot_cols,
            vals=np.ones(len(onehot_cols)),
            lo=1.0,
            hi=1.0,
            label="onehot",
        )

    # Precedence rows in graph.edges order (compute and message edges
    # interleaved, exactly as the reference build emits them).
    col_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    widths: list[int] = []
    rhs: list[float] = []
    for e in graph.edges:
        if e.is_compute:
            frontier = frontiers[e.id]
            col_parts.append(
                np.array([v_idx[e.dst], v_idx[e.src]], dtype=np.int64)
            )
            col_parts.append(c_arr[e.id])
            val_parts.append(np.array([1.0, -1.0]))
            val_parts.append(-frontier.durations)
            widths.append(2 + len(frontier))
            rhs.append(0.0)
        else:
            col_parts.append(
                np.array([v_idx[e.dst], v_idx[e.src]], dtype=np.int64)
            )
            val_parts.append(np.array([1.0, -1.0]))
            widths.append(2)
            rhs.append(e.duration_s)
    if widths:
        lp.add_block(
            indptr=np.concatenate(
                [[0], np.cumsum(np.asarray(widths, dtype=np.int64))]
            ),
            cols=np.concatenate(col_parts),
            vals=np.concatenate(val_parts),
            lo=np.asarray(rhs),
            hi=np.inf,
            label="prec",
        )
    return lp, v_idx, c_idx


def _base_model_reference(
    instance: ProblemInstance,
    name: str,
    frontiers: dict[int, TaskFrontier],
    order: list[int],
    integer: bool,
) -> tuple[LinearProgram, list[int], dict[int, list[int]]]:
    """Row-by-row reference build (the pre-vectorization oracle)."""
    graph = instance.graph
    lp = LinearProgram(name=name)

    v_idx: list[int] = []
    for vertex in graph.vertices:
        ub = 0.0 if vertex.id == instance.init_id else np.inf
        v_idx.append(lp.add_var(f"v{vertex.id}", lb=0.0, ub=ub))

    c_idx: dict[int, list[int]] = {}
    for edge_id in order:
        frontier = frontiers[edge_id]
        cols = [
            lp.add_var(f"c{edge_id}_{j}", lb=0.0, ub=1.0, integer=integer)
            for j in range(len(frontier))
        ]
        c_idx[edge_id] = cols
        lp.add_eq({col: 1.0 for col in cols}, 1.0, label=f"onehot{edge_id}")

    for e in graph.edges:
        if e.is_compute:
            terms = {v_idx[e.dst]: 1.0, v_idx[e.src]: -1.0}
            for col, duration in zip(c_idx[e.id], frontiers[e.id].durations):
                terms[col] = terms.get(col, 0.0) - duration
            lp.add_ge(terms, 0.0, label=f"prec-task{e.id}")
        else:
            lp.add_ge(
                {v_idx[e.dst]: 1.0, v_idx[e.src]: -1.0},
                e.duration_s,
                label=f"prec-msg{e.id}",
            )
    return lp, v_idx, c_idx


def extract_schedule(
    compiled: CompiledModel,
    solution: LpSolution,
    cap_w: float | None = None,
    kind: str | None = None,
    frac_tol: float = 1e-7,
    reference: bool = False,
) -> PowerSchedule:
    """Decode a primal vector into a :class:`PowerSchedule`.

    The public replacement for the formulations' former private
    extraction helpers.  ``cap_w`` defaults to the cap the model was
    compiled at; parametric re-solves pass the cap actually solved.

    ``reference=True`` decodes with the original per-task loop; the
    default vectorized decode produces bit-identical schedules (the
    tests assert this) via whole-solution gathers.
    """
    if cap_w is None:
        cap_w = compiled.cap_w
    if cap_w is None:
        raise ValueError("extract_schedule needs a cap (model compiled without)")
    x = solution.x
    cols = compiled.column_arrays()
    vertex_times = x[cols.vertices]
    if reference:
        assignments = _extract_assignments_reference(compiled, x, frac_tol)
    else:
        assignments = _extract_assignments(compiled, x, frac_tol)
    return PowerSchedule(
        kind=kind if kind is not None else compiled.kind,
        cap_w=float(cap_w),
        objective_s=float(x[compiled.v_idx[compiled.fin_id]]),
        assignments=assignments,
        vertex_times=vertex_times,
        solver_info={
            "n_vars": compiled.lp.n_vars,
            "n_constraints": compiled.lp.n_constraints,
            "objective_raw": solution.objective,
            **compiled.solver_info,
        },
    )


def _extract_assignments(
    compiled: CompiledModel, x: np.ndarray, frac_tol: float
) -> dict[TaskRef, TaskAssignment]:
    """Vectorized decode: gather/clip/normalize all tasks at once.

    The per-task weighted duration/power sums stay as sequential
    accumulation over the (tiny) kept mixtures so the floats match the
    reference decode bit for bit; the normalizing denominators use
    ``np.add.reduceat``, which performs the same reduction the
    reference's per-task ``.sum()`` does.
    """
    lay = compiled.extract_layout()
    assignments: dict[TaskRef, TaskAssignment] = {}
    if not lay.items:
        return assignments
    fracs = x[lay.all_cols].clip(0.0, 1.0)
    keep = fracs > frac_tol
    starts = lay.indptr[:-1]
    counts = np.add.reduceat(keep.astype(np.int64), starts)
    for t in np.flatnonzero(counts == 0):
        lo, hi = int(lay.indptr[t]), int(lay.indptr[t + 1])
        keep[lo + int(np.argmax(fracs[lo:hi]))] = True
        counts[t] = 1
    kept_idx = np.flatnonzero(keep)
    kept_ptr = np.concatenate([[0], np.cumsum(counts)])
    kept_fracs = fracs[kept_idx]
    sums = np.add.reduceat(kept_fracs, kept_ptr[:-1])
    norm = kept_fracs / np.repeat(sums, counts)
    d_terms = (lay.durations[kept_idx] * norm).tolist()
    p_terms = (lay.powers[kept_idx] * norm).tolist()
    local = (kept_idx - np.repeat(starts, counts)).tolist()
    norm_l = norm.tolist()
    kp = kept_ptr.tolist()
    for t, (ref, edge_id) in enumerate(lay.items):
        lo, hi = kp[t], kp[t + 1]
        duration = 0.0
        power = 0.0
        for k in range(lo, hi):
            duration += d_terms[k]
            power += p_terms[k]
        points = compiled.frontiers[edge_id].points
        assignments[ref] = TaskAssignment(
            ref=ref,
            edge_id=edge_id,
            mixture=tuple(
                (points[local[k]], norm_l[k]) for k in range(lo, hi)
            ),
            duration_s=duration,
            power_w=power,
        )
    return assignments


def _extract_assignments_reference(
    compiled: CompiledModel, x: np.ndarray, frac_tol: float
) -> dict[TaskRef, TaskAssignment]:
    """Per-task reference decode (the pre-vectorization oracle)."""
    cols = compiled.column_arrays()
    assignments: dict[TaskRef, TaskAssignment] = {}
    for ref, edge_id in compiled.instance.trace.task_edges.items():
        frontier = compiled.frontiers[edge_id]
        fracs = x[cols.tasks[edge_id]].clip(0.0, 1.0)
        keep = fracs > frac_tol
        if not keep.any():
            keep[int(np.argmax(fracs))] = True
        kept = np.flatnonzero(keep)
        kept_fracs = fracs[kept]
        kept_fracs = kept_fracs / kept_fracs.sum()
        duration = power = 0.0
        for j, f in zip(kept, kept_fracs):
            duration += frontier.durations[j] * f
            power += frontier.powers[j] * f
        assignments[ref] = TaskAssignment(
            ref=ref,
            edge_id=edge_id,
            mixture=tuple(
                (frontier.points[j], float(f))
                for j, f in zip(kept, kept_fracs)
            ),
            duration_s=float(duration),
            power_w=float(power),
        )
    return assignments
