"""repro.obs — structured observability: tracing, solver audit, provenance.

Three pillars, all contextvar-activated and zero-cost when disabled:

* **Event tracing** (:mod:`.events`, :mod:`.recorder`, :mod:`.export`) —
  the simulator engine, the Conductor runtime, RAPL, and the LP solver
  emit typed events into a ring-buffer :class:`TraceRecorder`; exporters
  render Chrome trace-event JSON (loadable in Perfetto) and JSONL.
* **Solver audit** (:mod:`.audit`) — every LP/MILP solve records model
  shape, iterations, status, objective, wall time, and provenance
  (cold / parametric re-solve / cache hit) into a :class:`SolveAudit`
  ledger.
* **Run provenance** (:mod:`.provenance`) — a :class:`RunManifest`
  (config hash, seed, model-layer version, package version, platform)
  stamped into saved artifacts and cache entries.

The package is stdlib-only and sits at the bottom of the layering,
beside :mod:`repro.exec.timing`: every other layer may import it.
See ``docs/observability.md`` for the event taxonomy and workflows.
"""

from .audit import (
    SolveAudit,
    SolveRecord,
    current_audit,
    note_cache,
    record_solve,
    use_audit,
)
from .events import (
    EVENT_KINDS,
    CapExceededEvent,
    CellFailureEvent,
    CollectiveEvent,
    CounterEvent,
    MpiWaitEvent,
    ReallocEvent,
    SolveEvent,
    TaskEvent,
)
from .export import (
    chrome_trace,
    export_chrome_trace,
    export_jsonl,
    validate_chrome_trace,
    validate_trace_file,
)
from .provenance import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    collect_manifest,
    config_hash,
    read_manifest,
    write_manifest,
)
from .recorder import (
    DEFAULT_CAPACITY,
    TraceRecorder,
    current_recorder,
    emit,
    use_recorder,
)

__all__ = [
    "CapExceededEvent",
    "CellFailureEvent",
    "CollectiveEvent",
    "CounterEvent",
    "DEFAULT_CAPACITY",
    "EVENT_KINDS",
    "MANIFEST_SCHEMA_VERSION",
    "MpiWaitEvent",
    "ReallocEvent",
    "RunManifest",
    "SolveAudit",
    "SolveEvent",
    "SolveRecord",
    "TaskEvent",
    "TraceRecorder",
    "chrome_trace",
    "collect_manifest",
    "config_hash",
    "current_audit",
    "current_recorder",
    "emit",
    "export_chrome_trace",
    "export_jsonl",
    "note_cache",
    "read_manifest",
    "record_solve",
    "use_audit",
    "use_recorder",
    "validate_chrome_trace",
    "validate_trace_file",
    "write_manifest",
]
