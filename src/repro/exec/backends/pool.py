"""The default transport: a ``ProcessPoolExecutor``.

:class:`ProcessPoolBackend` performs exactly the operations the
pre-backend :class:`~repro.exec.parallel.ParallelRunner` performed, in
the same order — submit through :func:`~repro.exec.backends.base.
run_task`, wait on the future with the caller's per-wait timeout,
rebuild the pool on ``BrokenExecutor`` — so the refactored runner stays
byte-identical to the old one on the golden serial-vs-parallel suites.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError

from ...obs.metrics import inc as metric_inc
from ..timing import count
from .base import (
    BackendTimeoutError,
    ExecBackend,
    TaskPayload,
    TaskSpec,
    WorkerLostError,
    run_task,
)

__all__ = ["ProcessPoolBackend"]


class ProcessPoolBackend(ExecBackend):
    """Task transport over a ``ProcessPoolExecutor``.

    Handles are the executor's own futures.  A broken pool (a worker
    killed by the OOM killer, ``os._exit``, a segfault) surfaces as
    :class:`~repro.exec.backends.base.WorkerLostError`;
    :meth:`recover` rebuilds the executor — resubmitting to a dead pool
    would fail instantly and misreport the cause — and counts
    ``pool.rebuilt`` in telemetry and operational metrics, exactly as
    the pre-backend runner did.
    """

    def __init__(self) -> None:
        self._pool: ProcessPoolExecutor | None = None
        self._n_workers = 0

    def start(self, n_workers: int) -> None:
        if self._pool is None:
            self._n_workers = max(1, n_workers)
            self._pool = ProcessPoolExecutor(max_workers=self._n_workers)

    def submit(self, spec: TaskSpec) -> Future:
        if self._pool is None:
            raise RuntimeError("ProcessPoolBackend.submit before start()")
        return self._pool.submit(
            run_task, spec.fn, spec.item,
            spec.want_trace, spec.want_audit,
            spec.want_metrics, spec.want_profile,
        )

    def result(self, handle: Future, timeout_s: float | None) -> TaskPayload:
        try:
            return handle.result(timeout=timeout_s)
        except FuturesTimeoutError as exc:
            raise BackendTimeoutError(exc) from exc
        except BrokenExecutor as exc:
            raise WorkerLostError(exc) from exc

    def cancel(self, handle: Future) -> None:
        handle.cancel()

    def recover(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        count("pool.rebuilt")
        metric_inc("pool.rebuilt", operational=True)
        self._pool = ProcessPoolExecutor(max_workers=self._n_workers)

    def needs_resubmit(self, handle: Future) -> bool:
        if not handle.done():
            return True
        if handle.cancelled():
            return True
        return isinstance(handle.exception(), BrokenExecutor)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
