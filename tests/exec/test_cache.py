"""SolverCache: key stability, exact round trips, versioned invalidation."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.core.fixed_order_lp import solve_fixed_order_lp
from repro.core.serialize import schedule_to_dict
from repro.core.energy_lp import solve_energy_lp
from repro.exec.cache import (
    CACHE_SCHEMA_VERSION,
    SolverCache,
    cached_solve_energy_lp,
    cached_solve_fixed_order_lp,
    solution_from_dict,
    solution_to_dict,
)
from repro.exec.keys import (
    canonical_json,
    experiment_key,
    machine_fingerprint,
    solver_key,
    trace_fingerprint,
)
from repro.experiments.runner import make_power_models
from repro.simulator import trace_application
from repro.workloads import two_rank_exchange

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _small_trace(phases: int = 1, cpu_seconds: float = 0.6):
    app = two_rank_exchange(phases=phases, cpu_seconds=cpu_seconds)
    pm = make_power_models(2, efficiency_seed=7, sigma=0.02)
    return trace_application(app, pm)


@pytest.fixture(scope="module")
def trace():
    return _small_trace()


# ----------------------------------------------------------------------
# Key stability
# ----------------------------------------------------------------------
class TestKeys:
    def test_canonical_json_is_sorted_and_compact(self):
        doc = {"b": 1, "a": [1.5, {"z": None, "y": True}]}
        assert canonical_json(doc) == '{"a":[1.5,{"y":true,"z":null}],"b":1}'

    def test_solver_key_deterministic_within_process(self, trace):
        k1 = solver_key(trace, 50.0)
        k2 = solver_key(_small_trace(), 50.0)
        assert k1 == k2
        assert len(k1) == 64

    def test_solver_key_changes_with_each_input(self, trace):
        base = solver_key(trace, 50.0)
        assert solver_key(trace, 60.0) != base
        assert solver_key(trace, 50.0, formulation="flow_ilp") != base
        assert solver_key(trace, 50.0, params={"discrete": True}) != base
        assert solver_key(_small_trace(cpu_seconds=0.7), 50.0) != base

    def test_machine_fingerprint_sees_efficiency(self):
        pm_a = make_power_models(2, efficiency_seed=7, sigma=0.02)
        pm_b = make_power_models(2, efficiency_seed=8, sigma=0.02)
        assert machine_fingerprint(pm_a) == machine_fingerprint(pm_a)
        assert machine_fingerprint(pm_a) != machine_fingerprint(pm_b)

    def test_experiment_key_sees_config_and_extras(self):
        doc = {"benchmark": "comd", "n_ranks": 8, "seed": 2015}
        base = experiment_key(doc, 50.0)
        assert experiment_key(doc, 50.0) == base
        assert experiment_key(doc, 60.0) != base
        assert experiment_key({**doc, "seed": 2016}, 50.0) != base
        assert experiment_key(doc, 50.0, include_discrete=True) != base

    def test_key_stable_across_processes(self, trace):
        """The same model hashes identically in a fresh interpreter with a
        different PYTHONHASHSEED — keys never depend on hash ordering."""
        script = textwrap.dedent(
            """
            from repro.exec.keys import solver_key, trace_fingerprint
            from repro.experiments.runner import make_power_models
            from repro.simulator import trace_application
            from repro.workloads import two_rank_exchange

            app = two_rank_exchange(phases=1, cpu_seconds=0.6)
            pm = make_power_models(2, efficiency_seed=7, sigma=0.02)
            trace = trace_application(app, pm)
            print(trace_fingerprint(trace))
            print(solver_key(trace, 50.0))
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "12345"
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        child_fp, child_key = out.stdout.split()
        assert child_fp == trace_fingerprint(trace)
        assert child_key == solver_key(trace, 50.0)


# ----------------------------------------------------------------------
# The store itself
# ----------------------------------------------------------------------
class TestSolverCache:
    def test_get_miss_then_put_then_hit(self, tmp_path):
        cache = SolverCache(tmp_path)
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"answer": 42})
        assert cache.get("ab" * 32) == {"answer": 42}
        assert cache.stats() == {
            "hits": 1, "misses": 1, "stores": 1, "hit_rate": 0.5,
        }
        assert len(cache) == 1

    def test_hit_rate_is_none_before_any_lookup(self, tmp_path):
        cache = SolverCache(tmp_path)
        assert cache.hit_rate is None
        assert cache.stats()["hit_rate"] is None
        cache.get("cd" * 32)
        assert cache.hit_rate == 0.0

    def test_entries_carry_provenance(self, tmp_path):
        from repro.core.model import MODEL_LAYER_VERSION

        cache = SolverCache(tmp_path)
        key = "ab" * 32
        cache.put(key, {"answer": 42})
        doc = json.loads(cache._path(key).read_text())
        prov = doc["provenance"]
        assert prov["model_layer_version"] == MODEL_LAYER_VERSION
        assert len(prov["config_hash"]) == 64
        # Readers key on schema+key only: provenance never affects hits.
        assert cache.get(key) == {"answer": 42}

    def test_cache_traffic_reaches_the_audit_ledger(self, tmp_path):
        from repro.obs.audit import SolveAudit, use_audit

        cache = SolverCache(tmp_path)
        audit = SolveAudit()
        with use_audit(audit):
            cache.get("ab" * 32)
            cache.put("ab" * 32, {"v": 1})
            cache.get("ab" * 32)
        assert (audit.cache_hits, audit.cache_misses) == (1, 1)

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = SolverCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"v": 1})
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = SolverCache(tmp_path)
        key = "ef" * 32
        cache.put(key, {"v": 1})
        path = cache._path(key)
        doc = json.loads(path.read_text())
        doc["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc))
        assert cache.get(key) is None

    def test_wrong_key_in_file_is_a_miss(self, tmp_path):
        """A file whose recorded key disagrees with its address is ignored."""
        cache = SolverCache(tmp_path)
        key_a, key_b = "aa" * 32, "bb" * 32
        cache.put(key_a, {"v": 1})
        path_b = cache._path(key_b)
        path_b.parent.mkdir(parents=True, exist_ok=True)
        path_b.write_text(cache._path(key_a).read_text())
        assert cache.get(key_b) is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = SolverCache(tmp_path)
        for i in range(5):
            cache.put(f"{i:02x}" * 32, {"i": i})
        assert not list(tmp_path.rglob("*.tmp"))

    def test_stale_tmp_swept_on_construction(self, tmp_path):
        """A worker killed mid-put leaks a temp file; construction reaps it."""
        cache = SolverCache(tmp_path)
        cache.put("ab" * 32, {"v": 1})
        orphan = cache._path("ab" * 32).parent / "orphanXYZ.tmp"
        orphan.write_text("{half a wri")
        old = os.stat(orphan).st_mtime - 7200
        os.utime(orphan, (old, old))
        fresh = SolverCache(tmp_path)
        assert fresh.tmp_swept == 1
        assert not orphan.exists()
        assert fresh.get("ab" * 32) == {"v": 1}  # real entries untouched

    def test_live_tmp_survives_sweep(self, tmp_path):
        """A recent temp file may belong to a live writer: never reaped."""
        cache = SolverCache(tmp_path)
        cache.put("cd" * 32, {"v": 1})
        live = cache._path("cd" * 32).parent / "liveXYZ.tmp"
        live.write_text("{half a wri")
        fresh = SolverCache(tmp_path)
        assert fresh.tmp_swept == 0
        assert live.exists()


# ----------------------------------------------------------------------
# Solver memoization round trips
# ----------------------------------------------------------------------
class TestCachedSolve:
    def test_hit_is_bit_identical(self, tmp_path, trace):
        cache = SolverCache(tmp_path)
        cold = cached_solve_fixed_order_lp(trace, 50.0, cache=cache)
        warm = cached_solve_fixed_order_lp(trace, 50.0, cache=cache)
        assert cache.hits == 1 and cache.stores == 1
        assert warm.solution.status == cold.solution.status
        assert warm.solution.objective == cold.solution.objective
        assert np.array_equal(warm.solution.x, cold.solution.x)
        assert schedule_to_dict(warm.schedule) == schedule_to_dict(cold.schedule)

    def test_hit_matches_uncached_solve(self, tmp_path, trace):
        cache = SolverCache(tmp_path)
        cached_solve_fixed_order_lp(trace, 50.0, cache=cache)
        warm = cached_solve_fixed_order_lp(trace, 50.0, cache=cache)
        fresh = solve_fixed_order_lp(trace, 50.0)
        assert warm.solution.objective == fresh.solution.objective
        assert np.array_equal(warm.solution.x, fresh.solution.x)

    def test_infeasible_result_is_cached(self, tmp_path, trace):
        cache = SolverCache(tmp_path)
        cold = cached_solve_fixed_order_lp(trace, 1.0, cache=cache)
        warm = cached_solve_fixed_order_lp(trace, 1.0, cache=cache)
        assert not cold.feasible
        assert not warm.feasible
        assert warm.schedule is None
        assert cache.hits == 1

    def test_none_cache_is_a_pass_through(self, trace):
        result = cached_solve_fixed_order_lp(trace, 50.0, cache=None)
        fresh = solve_fixed_order_lp(trace, 50.0)
        assert result.solution.objective == fresh.solution.objective

    def test_different_params_do_not_collide(self, tmp_path, trace):
        cache = SolverCache(tmp_path)
        cont = cached_solve_fixed_order_lp(trace, 50.0, cache=cache)
        disc = cached_solve_fixed_order_lp(trace, 50.0, cache=cache, discrete=True)
        assert cache.hits == 0 and cache.stores == 2
        assert cont.solution.objective <= disc.solution.objective + 1e-9


class TestCachedEnergySolve:
    def test_hit_is_bit_identical(self, tmp_path, trace):
        cache = SolverCache(tmp_path)
        cold = cached_solve_energy_lp(trace, slowdown=0.1, cache=cache)
        warm = cached_solve_energy_lp(trace, slowdown=0.1, cache=cache)
        assert cache.hits == 1 and cache.stores == 1
        assert warm.energy_j == cold.energy_j
        assert warm.time_budget_s == cold.time_budget_s
        assert np.array_equal(warm.solution.x, cold.solution.x)
        assert schedule_to_dict(warm.schedule) == schedule_to_dict(cold.schedule)

    def test_hit_matches_uncached_solve(self, tmp_path, trace):
        cache = SolverCache(tmp_path)
        cached_solve_energy_lp(trace, cache=cache)
        warm = cached_solve_energy_lp(trace, cache=cache)
        fresh = solve_energy_lp(trace)
        assert warm.energy_j == fresh.energy_j
        assert np.array_equal(warm.solution.x, fresh.solution.x)

    def test_cap_and_deadline_shape_the_key(self, tmp_path, trace):
        cache = SolverCache(tmp_path)
        plain = cached_solve_energy_lp(trace, cache=cache)
        roomy = cached_solve_energy_lp(trace, cache=cache, cap_w=1e6)
        late = cached_solve_energy_lp(
            trace, cache=cache, cap_w=1e6,
            deadline_s=plain.time_budget_s * 2,
        )
        assert cache.hits == 0 and cache.stores == 3
        assert late.energy_j <= roomy.energy_j + 1e-9

    def test_infeasible_capped_result_is_cached(self, tmp_path, trace):
        cache = SolverCache(tmp_path)
        cold = cached_solve_energy_lp(trace, cache=cache, cap_w=1.0)
        warm = cached_solve_energy_lp(trace, cache=cache, cap_w=1.0)
        assert not cold.feasible and not warm.feasible
        assert warm.schedule is None and warm.energy_j is None
        assert cache.hits == 1

    def test_none_cache_is_a_pass_through(self, trace):
        result = cached_solve_energy_lp(trace, cache=None)
        fresh = solve_energy_lp(trace)
        assert result.energy_j == fresh.energy_j


def test_solution_dict_round_trip(trace):
    solution = solve_fixed_order_lp(trace, 50.0).solution
    back = solution_from_dict(json.loads(json.dumps(solution_to_dict(solution))))
    assert back.status == solution.status
    assert back.objective == solution.objective
    assert np.array_equal(back.x, solution.x)
    assert back.message == solution.message
