"""White-box tests of Conductor's reallocation controller and the oracle."""

import numpy as np
import pytest

from repro.machine import Configuration, TaskKernel, sample_socket_efficiencies
from repro.machine import SocketPowerModel
from repro.runtime import ConductorConfig, ConductorPolicy, StaticPolicy
from repro.simulator import Engine, TaskRecord, TaskRef
from repro.workloads import imbalanced_collective_app


@pytest.fixture
def models():
    eff = sample_socket_efficiencies(4, seed=9)
    return [SocketPowerModel(efficiency=float(e)) for e in eff]


@pytest.fixture
def app():
    return imbalanced_collective_app(n_ranks=4, iterations=12, spread=1.6)


def record(rank, start, dur, power, kernel):
    return TaskRecord(
        ref=TaskRef(rank, 0), iteration=5, label="",
        config=Configuration(2.0, 8), start_s=start, duration_s=dur,
        power_w=power, kernel=kernel,
    )


class TestReallocateController:
    def make_policy(self, models, app, **overrides):
        kwargs = dict(realloc_period=1, step_w=100.0, measurement_noise=0.0)
        kwargs.update(overrides)
        return ConductorPolicy(models, 120.0, app,
                               config=ConductorConfig(**kwargs))

    def test_heavy_rank_gains(self, models, app, kernel):
        policy = self.make_policy(models, app)
        # Rank 3 busy the whole span; others idle half of it.
        records = [
            record(r, 0.0, 1.0 if r < 3 else 2.0, 28.0, kernel)
            for r in range(4)
        ]
        before = policy.alloc_w.copy()
        policy._reallocate(records)
        assert policy.alloc_w[3] > before[3]
        assert policy.alloc_w.sum() <= 120.0 + 1e-9

    def test_balanced_records_stable(self, models, app, kernel):
        policy = self.make_policy(models, app)
        records = [record(r, 0.0, 1.5, 29.0, kernel) for r in range(4)]
        before = policy.alloc_w.copy()
        policy._reallocate(records)
        # Everyone critical and equally needy: allocation barely moves.
        np.testing.assert_allclose(policy.alloc_w, before, atol=2.0)

    def test_step_bound_limits_movement(self, models, app, kernel):
        policy = self.make_policy(models, app, step_w=1.0)
        records = [
            record(r, 0.0, 0.5 if r < 3 else 2.0, 20.0 if r < 3 else 29.0,
                   kernel)
            for r in range(4)
        ]
        before = policy.alloc_w.copy()
        policy._reallocate(records)
        assert np.abs(policy.alloc_w - before).max() <= 1.0 + 1e-9

    def test_infeasible_demand_scales_down(self, models, app):
        hungry = TaskKernel(cpu_seconds=1.0, activity=1.8, mem_intensity=0.8)
        policy = self.make_policy(models, app)
        policy.job_cap_w = 60.0
        policy.alloc_w[:] = 15.0
        records = [record(r, 0.0, 2.0, 15.0, hungry) for r in range(4)]
        policy._reallocate(records)
        assert policy.alloc_w.sum() <= 60.0 + 1e-6


class TestOracle:
    def test_oracle_construction(self, models, app):
        policy = ConductorPolicy.oracle(models, 120.0, app)
        assert policy.cfg.measurement_noise == 0.0
        assert policy.cfg.realloc_overhead_s == 0.0
        assert policy.switch_cost_s() == 0.0

    def test_oracle_between_conductor_and_lp(self, models, app):
        """oracle >= LP bound; oracle <= realistic Conductor (steady)."""
        from repro.core import solve_fixed_order_lp
        from repro.simulator import trace_application
        from repro.workloads import imbalanced_collective_app as make

        job_cap = 4 * 28.0
        engine = Engine(models)

        def tail(policy):
            res = engine.run(app, policy)
            start = min(r.start_s for r in res.records if r.iteration >= 8)
            return (res.makespan_s - start) / 4

        t_oracle = tail(ConductorPolicy.oracle(models, job_cap, app))
        t_real = tail(
            ConductorPolicy(
                models, job_cap, app,
                config=ConductorConfig(realloc_period=4, step_w=2.5,
                                       measurement_noise=0.02),
            )
        )
        lp_app = make(n_ranks=4, iterations=4, spread=1.6)
        trace = trace_application(lp_app, models)
        lp = solve_fixed_order_lp(trace, job_cap)
        t_lp = lp.makespan_s / 4
        assert t_lp <= t_oracle * (1 + 5e-3)
        assert t_oracle <= t_real * (1 + 5e-3)

    def test_oracle_beats_static(self, models, app):
        engine = Engine(models)
        job_cap = 4 * 28.0
        res_static = engine.run(app, StaticPolicy(models, job_cap))
        res_oracle = engine.run(
            app, ConductorPolicy.oracle(models, job_cap, app)
        )
        start_o = min(
            r.start_s for r in res_oracle.records if r.iteration >= 8
        )
        start_s = min(
            r.start_s for r in res_static.records if r.iteration >= 8
        )
        assert (res_oracle.makespan_s - start_o) < (
            res_static.makespan_s - start_s
        )
