#!/usr/bin/env python
"""Where does power capping start to hurt?  A cap sweep across benchmarks.

Reproduces the *analysis style* of the paper's Figures 9-15 at a reduced
scale: for every benchmark and per-socket cap, compare Static, Conductor,
and the LP bound, then print the crossover observations the paper makes —

* BT (imbalanced) gains the most from nonuniform power at low caps;
* CoMD/SP (balanced) leave Static within a few percent of optimal;
* LULESH keeps a large gap at *every* cap because Static's fixed 8-thread
  policy loses to cache contention regardless of power.

Run:  python examples/power_sweep_study.py          (~2 min, 16 ranks)
      python examples/power_sweep_study.py --tiny   (faster, 8 ranks)
"""

import sys

from repro import ExperimentConfig, run_comparison
from repro.experiments import render_table
from repro.experiments.figures import BENCH_CAPS


def main() -> None:
    n_ranks = 8 if "--tiny" in sys.argv else 16
    rows = []
    peak = {}
    for bench in ("comd", "bt", "sp", "lulesh"):
        cfg = ExperimentConfig(
            benchmark=bench, n_ranks=n_ranks,
            lp_iterations=3 if bench == "lulesh" else 4,
        )
        for cap in BENCH_CAPS[bench]:
            r = run_comparison(cfg, cap)
            if not r.schedulable:
                rows.append([bench, cap, None, None, None])
                continue
            rows.append([
                bench, cap, r.lp_vs_static_pct, r.conductor_vs_static_pct,
                r.lp_vs_conductor_pct,
            ])
            if r.lp_vs_static_pct is not None:
                peak[bench] = max(peak.get(bench, 0.0), r.lp_vs_static_pct)

    print(render_table(
        ["benchmark", "cap (W/socket)", "LP vs Static (%)",
         "Conductor vs Static (%)", "LP vs Conductor (%)"],
        rows, title="Power sweep study", digits=1,
    ))
    print()
    ranked = sorted(peak.items(), key=lambda kv: -kv[1])
    print("peak LP-vs-Static improvement per benchmark:")
    for bench, val in ranked:
        print(f"  {bench:<8} {val:6.1f}%")
    print("\nreading: imbalanced (bt) and thread-mismatched (lulesh) codes "
          "leave the most on the table under uniform static caps.")


if __name__ == "__main__":
    main()
