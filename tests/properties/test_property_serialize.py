"""Property-based roundtrip tests for schedule and application I/O."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import (
    round_schedule,
    schedule_from_dict,
    schedule_to_dict,
    solve_fixed_order_lp,
)
from repro.machine import SocketPowerModel
from repro.simulator import (
    application_from_dict,
    application_to_dict,
    trace_application,
)
from repro.workloads import random_application

apps = st.builds(
    random_application,
    n_ranks=st.integers(1, 4),
    iterations=st.integers(1, 3),
    seed=st.integers(0, 10_000),
    p_p2p=st.floats(0.0, 1.0),
)


class TestApplicationRoundtrip:
    @given(app=apps)
    @settings(max_examples=40, deadline=None)
    def test_ops_identical(self, app):
        back = application_from_dict(application_to_dict(app))
        assert back.n_ranks == app.n_ranks
        assert back.iterations == app.iterations
        for pa, pb in zip(app.programs, back.programs):
            assert pa == pb

    @given(app=apps)
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_traces_identically(self, app):
        models = [SocketPowerModel() for _ in range(app.n_ranks)]
        back = application_from_dict(application_to_dict(app))
        ta = trace_application(app, models)
        tb = trace_application(back, models)
        assert ta.graph.n_edges == tb.graph.n_edges
        assert set(ta.task_edges) == set(tb.task_edges)


class TestScheduleRoundtrip:
    @given(app=apps, cap_per_rank=st.floats(30.0, 90.0),
           mode=st.sampled_from(["continuous", "nearest", "floor"]))
    @settings(max_examples=15, deadline=None)
    def test_any_schedule_roundtrips(self, app, cap_per_rank, mode):
        models = [
            SocketPowerModel(efficiency=1.0 + 0.02 * r)
            for r in range(app.n_ranks)
        ]
        trace = trace_application(app, models)
        res = solve_fixed_order_lp(trace, cap_per_rank * app.n_ranks)
        if not res.feasible:
            return
        sched = res.schedule
        if mode != "continuous":
            sched = round_schedule(trace, sched, mode=mode)
        back = schedule_from_dict(schedule_to_dict(sched))
        assert back.kind == sched.kind
        assert back.objective_s == pytest.approx(sched.objective_s)
        assert back.config_map() == sched.config_map()
        for ref, a in sched.assignments.items():
            b = back.assignments[ref]
            assert b.duration_s == pytest.approx(a.duration_s)
            assert b.power_w == pytest.approx(a.power_w)
            assert len(b.mixture) == len(a.mixture)
