"""Plain-text rendering of experiment results (the 'figures' of this repo).

Every exhibit renders as an aligned text table so benchmark harnesses and
CI logs can diff them; no plotting dependency is required offline.
"""

from __future__ import annotations

__all__ = ["render_table", "fmt", "render_kv", "render_series"]


def fmt(value, digits: int = 3) -> str:
    """Human-compact cell formatting: None -> '-', floats rounded."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    headers: list[str], rows: list[list], title: str = "", digits: int = 3
) -> str:
    """Render an aligned, pipe-separated table."""
    cells = [[fmt(c, digits) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_kv(pairs: dict, title: str = "") -> str:
    """Render key/value summary lines."""
    lines = [title] if title else []
    width = max((len(k) for k in pairs), default=0)
    for k, v in pairs.items():
        lines.append(f"  {k.ljust(width)} : {fmt(v)}")
    return "\n".join(lines)


def render_series(
    x_header: str,
    x_values: list,
    series: dict[str, list],
    title: str = "",
    digits: int = 3,
) -> str:
    """Render an x column plus one aligned column per named series.

    Every series must have one value per x (None renders as '-'); the
    N-way scenario exhibits use this for an arbitrary number of policies.
    """
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_values)} x points"
            )
    headers = [x_header] + list(series)
    rows = [
        [x] + [series[name][i] for name in series]
        for i, x in enumerate(x_values)
    ]
    return render_table(headers, rows, title=title, digits=digits)
