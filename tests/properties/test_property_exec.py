"""Properties of the exec layer's resilience primitives.

Two contracts the runner and the service lean on:

* :func:`~repro.exec.parallel.retry_delay_s` is a *schedule*, not a
  random draw — the same (seed, index, attempt) always yields the same
  delay, every delay stays within [0, cap], and the cap bounds the
  schedule no matter how many attempts pile up;
* :class:`~repro.exec.checkpoint.SweepJournal` is last-record-wins:
  however many writers interleave appends to one journal file, ``load``
  returns exactly the final record written for each key.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.exec.checkpoint import SweepJournal
from repro.exec.parallel import retry_delay_s

SEEDS = st.integers(min_value=0, max_value=2**32)
INDICES = st.integers(min_value=0, max_value=10_000)
ATTEMPTS = st.integers(min_value=1, max_value=40)
BASES = st.floats(min_value=1e-4, max_value=5.0,
                  allow_nan=False, allow_infinity=False)
CAPS = st.floats(min_value=1e-3, max_value=10.0,
                 allow_nan=False, allow_infinity=False)


class TestRetryDelay:
    @given(seed=SEEDS, index=INDICES, attempt=ATTEMPTS, base=BASES, cap=CAPS)
    def test_deterministic_per_seed(self, seed, index, attempt, base, cap):
        a = retry_delay_s(seed, index, attempt, base, cap_s=cap)
        b = retry_delay_s(seed, index, attempt, base, cap_s=cap)
        assert a == b

    @given(seed=SEEDS, index=INDICES, attempt=ATTEMPTS, base=BASES, cap=CAPS)
    def test_bounded_by_cap(self, seed, index, attempt, base, cap):
        delay = retry_delay_s(seed, index, attempt, base, cap_s=cap)
        # Jitter scales the exponential term into [0.5, 1.0), so the cap
        # bounds every delay and the floor is half the (capped) term.
        exp = min(cap, base * (2 ** (attempt - 1)))
        assert 0.0 <= delay <= cap
        assert exp * 0.5 <= delay < exp

    @given(seed=SEEDS, index=INDICES, attempt=ATTEMPTS, cap=CAPS)
    def test_nonpositive_base_disables_backoff(self, seed, index, attempt, cap):
        assert retry_delay_s(seed, index, attempt, 0.0, cap_s=cap) == 0.0
        assert retry_delay_s(seed, index, attempt, -1.0, cap_s=cap) == 0.0

    @given(seed=SEEDS, index=INDICES, base=BASES)
    def test_cap_is_monotone_ceiling(self, seed, index, base):
        # Once the exponential term saturates at the cap, later attempts
        # never exceed it — the schedule cannot run away.
        cap = 4.0 * base
        delays = [
            retry_delay_s(seed, index, attempt, base, cap_s=cap)
            for attempt in range(1, 30)
        ]
        assert all(d <= cap for d in delays)


# One interleaved history: ops are (writer, key, ok, tag) — which of two
# journal handles appends, under which key, with what status/payload.
OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),
        st.sampled_from(["k0", "k1", "k2"]),
        st.booleans(),
        st.integers(min_value=0, max_value=9),
    ),
    max_size=25,
)


class TestJournalLastRecordWins:
    @given(ops=OPS)
    @settings(max_examples=50)
    def test_interleaved_writers(self, ops):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "sweep.jsonl"
            # Two independent handles on one file model two processes
            # (a CLI sweep and a service dispatcher) sharing a journal.
            writers = (SweepJournal(path), SweepJournal(path))
            expected: dict[str, tuple] = {}
            for writer, key, ok, tag in ops:
                if ok:
                    writers[writer].record_ok(key, 50.0, {"tag": tag})
                else:
                    writers[writer].record_failed(
                        key, 50.0, {"error_type": "E", "tag": tag}
                    )
                expected[key] = (ok, tag)
            loaded = SweepJournal(path).load()
            assert set(loaded) == set(expected)
            for key, (ok, tag) in expected.items():
                doc = loaded[key]
                if ok:
                    assert doc["status"] == "ok"
                    assert doc["payload"] == {"tag": tag}
                else:
                    assert doc["status"] == "failed"
                    assert doc["failure"]["tag"] == tag

    @given(ops=OPS)
    @settings(max_examples=25)
    def test_torn_tail_preserves_prefix(self, ops):
        # A crash mid-append leaves a torn last line; every record
        # before it must still load.
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "sweep.jsonl"
            journal = SweepJournal(path)
            expected: dict[str, tuple] = {}
            for writer, key, ok, tag in ops:
                if ok:
                    journal.record_ok(key, 50.0, {"tag": tag})
                else:
                    journal.record_failed(
                        key, 50.0, {"error_type": "E", "tag": tag}
                    )
                expected[key] = (ok, tag)
            with path.open("a") as fh:
                fh.write('{"schema": 1, "key": "k0", "status": "o')
            loaded = SweepJournal(path).load()
            assert set(loaded) == set(expected)
