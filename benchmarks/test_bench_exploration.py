"""Extension exhibit: bound quality vs profiling effort.

The paper's bounds come from measured traces; this benchmark quantifies
how many heterogeneous exploration runs it takes for the *measured* LP
bound to converge to the oracle (full-knowledge) bound — the cost of the
paper's methodology, made explicit.
"""

import pytest

from repro.core import solve_fixed_order_lp
from repro.experiments.runner import make_power_models
from repro.simulator import trace_application, trace_from_exploration
from repro.workloads import imbalanced_collective_app

from conftest import engage

N_RANKS = 4
CAP = N_RANKS * 30.0


@pytest.fixture(scope="module")
def setup():
    app = imbalanced_collective_app(n_ranks=N_RANKS, iterations=2, spread=1.4)
    models = make_power_models(N_RANKS, 11)
    oracle_t = solve_fixed_order_lp(
        trace_application(app, models), CAP
    ).makespan_s
    return app, models, oracle_t


def test_exploration_tracing_speed(benchmark, setup):
    app, models, _ = setup
    trace = benchmark.pedantic(
        trace_from_exploration, args=(app, models, 12), rounds=1, iterations=1
    )
    assert len(trace.task_edges) == app.n_tasks()


def test_bound_convergence_curve(benchmark, setup):
    """The measured bound decreases monotonically toward the oracle and
    lands within 20% by a third of full coverage."""
    engage(benchmark)
    app, models, oracle_t = setup
    curve = {}
    for rounds in (4, 12, 40, 120):
        res = solve_fixed_order_lp(
            trace_from_exploration(app, models, rounds=rounds), CAP
        )
        curve[rounds] = res.makespan_s if res.feasible else float("inf")
    vals = [curve[r] for r in (4, 12, 40, 120)]
    assert all(b <= a + 1e-9 for a, b in zip(vals, vals[1:]))
    assert curve[40] <= oracle_t * 1.20
    assert curve[120] == pytest.approx(oracle_t, rel=1e-6)


def test_sparse_exploration_still_useful(benchmark, setup):
    """Even a handful of rounds yields a valid (if loose) upper bound on
    achievable performance — it never reports better-than-possible."""
    engage(benchmark)
    app, models, oracle_t = setup
    res = solve_fixed_order_lp(
        trace_from_exploration(app, models, rounds=4), CAP
    )
    if res.feasible:
        assert res.makespan_s >= oracle_t - 1e-9
