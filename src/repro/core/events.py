"""Event structure: fixed vertex order and task activity sets for the LP.

The fixed-vertex-order LP (paper §3.3) constrains job power only at
*events* — the DAG's vertices — and needs two things derived from an
initial, power-unconstrained schedule:

* the **event order**: vertices sorted by their initial times, with
  coincident vertices grouped (LP equations 12-13 pin the optimized vertex
  times to this order);
* the **activity sets** ``R_j``: the compute tasks charged against the
  power constraint at each event.  A task is active at an event if the
  event falls inside the task's window ``[v_src, v_dst)`` of the initial
  schedule — the window spans the task *and its trailing slack*, because
  the formulation assumes slack power equals the associated task's power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dag.analysis import DagSchedule, unconstrained_schedule
from ..dag.graph import TaskGraph
from ..machine.performance import TaskTimeModel

__all__ = ["EventStructure", "build_event_structure"]


@dataclass(frozen=True)
class EventStructure:
    """Fixed event order plus per-event active task sets.

    Attributes
    ----------
    groups:
        Vertex ids grouped by equal initial time, groups sorted by time.
        Equation (13) ties vertices within a group; equation (12) orders
        consecutive groups.
    active:
        For each vertex id, the compute-edge ids whose activity window
        contains the vertex's initial time.
    initial:
        The initial schedule the structure was derived from.
    """

    groups: list[list[int]]
    active: dict[int, list[int]]
    initial: DagSchedule

    @property
    def n_events(self) -> int:
        return sum(len(g) for g in self.groups)

    def max_active(self) -> int:
        """Largest activity set — a quick density diagnostic."""
        return max((len(a) for a in self.active.values()), default=0)


def build_event_structure(
    graph: TaskGraph,
    time_model: TaskTimeModel | None = None,
    initial: DagSchedule | None = None,
    time_tol: float = 1e-9,
) -> EventStructure:
    """Derive the event order and activity sets from an initial schedule.

    ``initial`` defaults to the power-unconstrained (every task fastest)
    schedule, as in the paper.  ``time_tol`` groups vertices whose initial
    times differ by less than the tolerance (collective completions produce
    exactly-equal times; float noise stays far below the tolerance).
    """
    if initial is None:
        tm = time_model if time_model is not None else TaskTimeModel()
        initial = unconstrained_schedule(graph, tm)

    times = initial.vertex_times
    order = np.argsort(times, kind="stable")
    groups: list[list[int]] = []
    for vid in order:
        vid = int(vid)
        if groups and abs(times[vid] - times[groups[-1][0]]) <= time_tol:
            groups[-1].append(vid)
        else:
            groups.append([vid])

    # Activity windows implement "slack power equals task power": a task is
    # charged from its start until the *next compute task on its rank*
    # starts (the last task of a rank is charged through to Finalize).
    # Using the task's own dst vertex would drop the power a rank burns
    # while blocked inside an MPI call — e.g. spinning in an allreduce —
    # because that wait lives on wire/message edges.
    from ..dag.graph import VertexKind

    t_end = float(times[graph.find_vertex(VertexKind.FINALIZE).id])
    windows: list[tuple[float, float, int]] = []
    for rank in range(graph.n_ranks):
        edges = sorted(graph.rank_edges(rank), key=lambda e: float(times[e.src]))
        for e, nxt in zip(edges, edges[1:] + [None]):
            start = float(times[e.src])
            stop = t_end if nxt is None else float(times[nxt.src])
            # Guard: a zero-or-negative window can only come from float
            # noise on coincident events; clamp to the task's own span.
            stop = max(stop, float(times[e.dst]))
            windows.append((start, stop, e.id))
    windows.sort()
    starts = np.array([w[0] for w in windows])

    # Zero-length windows (a task whose src and dst coincide initially) are
    # indexed separately: such a task still "starts at" its event and must
    # be charged there even though the half-open test misses it.
    zero_starts = np.array(
        [ws for (ws, we, wid) in windows if we <= ws + time_tol]
    )
    zero_ids = [wid for (ws, we, wid) in windows if we <= ws + time_tol]

    active: dict[int, list[int]] = {}
    for group in groups:
        t = float(times[group[0]])
        # Candidates: windows starting at or before t (half-open at end,
        # closed at start: a task starting exactly at the event is active).
        hi = int(np.searchsorted(starts, t + time_tol, side="right"))
        live = [
            wid for (ws, we, wid) in windows[:hi] if we > t + time_tol
        ]
        if len(zero_ids):
            lo_z = int(np.searchsorted(zero_starts, t - time_tol, side="left"))
            hi_z = int(np.searchsorted(zero_starts, t + time_tol, side="right"))
            live.extend(zero_ids[lo_z:hi_z])
        for vid in group:
            active[vid] = live

    return EventStructure(groups=groups, active=active, initial=initial)
