"""Tests for the repro-experiments CLI."""

import json
import re

import pytest

from repro.experiments.cli import EXHIBITS, main
from repro.obs.provenance import MANIFEST_SCHEMA_VERSION


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXHIBITS:
            assert name in out

    def test_unknown_exhibit(self):
        with pytest.raises(SystemExit):
            main(["not-a-figure"])

    def test_fig1_runs(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "regenerated" in out

    def test_overheads_runs(self, capsys):
        assert main(["overheads"]) == 0
        assert "566" in capsys.readouterr().out

    def test_quick_flag_shrinks_ranks(self, capsys):
        # fig12 with --quick runs 8 ranks x 4 iterations: fast.
        assert main(["--quick", "fig12"]) == 0
        assert "Figure 12" in capsys.readouterr().out

    def test_save_writes_files(self, capsys, tmp_path):
        assert main(["--save", str(tmp_path), "fig1", "overheads"]) == 0
        capsys.readouterr()
        assert (tmp_path / "fig1.txt").read_text().startswith("Figure 1")
        assert "566" in (tmp_path / "overheads.txt").read_text()

    def test_save_stamps_manifest(self, capsys, tmp_path):
        assert main(["--save", str(tmp_path), "fig1"]) == 0
        capsys.readouterr()
        doc = json.loads((tmp_path / "manifest.json").read_text())
        assert doc["schema"] == MANIFEST_SCHEMA_VERSION
        assert len(doc["config_hash"]) == 64


class TestRunSubcommand:
    def test_quick_run_prints_comparison(self, capsys):
        assert main(["run", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "comd: 4 ranks" in out
        assert "conductor" in out and "lp bound" in out

    def test_run_rejects_positionals(self):
        with pytest.raises(SystemExit):
            main(["run", "fig1"])

    def test_run_save_writes_summary_and_manifest(self, capsys, tmp_path):
        assert main(["run", "--quick", "--save", str(tmp_path)]) == 0
        capsys.readouterr()
        assert "comd" in (tmp_path / "run.txt").read_text()
        doc = json.loads((tmp_path / "manifest.json").read_text())
        assert doc["seed"] == 2015  # the paper's RNG seed
        assert doc["model_layer_version"] is not None

    def test_trace_dir_exports_both_formats(self, capsys, tmp_path):
        assert main(["run", "--quick", "--trace-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert (tmp_path / "trace.json").exists()
        assert (tmp_path / "trace.jsonl").exists()

    def test_timings_json_embeds_solve_audit(self, capsys, tmp_path):
        out = tmp_path / "timings.json"
        assert main(["run", "--quick", "--timings-json", str(out)]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        audit = doc["solve_audit"]
        assert audit["solves"], "the LP solve must be in the ledger"
        assert audit["solves"][0]["status"] == "optimal"
        assert set(audit["cache"]) == {"hits", "misses"}


class TestScenarioRuns:
    QUICK = ["--quick", "--benchmark", "synthetic"]

    def test_run_policies_four_way(self, capsys):
        argv = ["run", *self.QUICK, "--cap", "50",
                "--policies", "static,conductor,adagio,lp"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        for label in ("static", "conductor", "adagio", "lp"):
            assert label in out
        assert "(4-way, spec " in out

    def test_run_baseline_annotations(self, capsys):
        argv = ["run", *self.QUICK, "--cap", "50",
                "--policies", "static,lp", "--baseline", "static"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "% vs static" in out

    def test_run_unknown_policy_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["run", *self.QUICK, "--policies", "static,magic"])

    def test_run_baseline_must_be_in_scenario(self):
        with pytest.raises(SystemExit):
            main(["run", *self.QUICK, "--policies", "static,lp",
                  "--baseline", "conductor"])

    def test_scenario_and_policies_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", *self.QUICK, "--policies", "static",
                  "--scenario", str(tmp_path / "s.json")])

    def test_sweep_defaults_to_three_way(self, capsys):
        argv = ["sweep", *self.QUICK, "--caps", "40,60"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "(3-way, spec " in out
        assert "Scenario summary" in out

    def test_sweep_scenario_file_keeps_its_grid(self, capsys, tmp_path):
        from repro.scenarios.spec import PolicySpec, ScenarioSpec

        spec = ScenarioSpec(
            benchmark="synthetic", caps_per_socket_w=(45.0, 65.0),
            policies=(PolicySpec("static"),
                      PolicySpec("conductor", name="cond-fast",
                                 config={"realloc_period": 2})),
            n_ranks=4, run_iterations=8, lp_iterations=2,
            discard_iterations=2, steady_window=4,
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert main(["sweep", "--scenario", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cond-fast" in out
        assert "45" in out and "65" in out

    def test_run_save_embeds_scenario_in_manifest(self, capsys, tmp_path):
        argv = ["run", *self.QUICK, "--cap", "50",
                "--policies", "static,adagio,lp", "--save", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        doc = json.loads((tmp_path / "manifest.json").read_text())
        assert doc["schema"] == MANIFEST_SCHEMA_VERSION
        scenario = doc["scenario"]
        assert scenario["benchmark"] == "synthetic"
        assert [p["policy"] for p in scenario["policies"]] == [
            "static", "adagio", "lp",
        ]
        assert "static" in (tmp_path / "run.txt").read_text()

    def test_run_policies_with_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        argv = ["run", *self.QUICK, "--cap", "50",
                "--policies", "static,lp", "--trace", str(trace)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["validate-trace", str(trace)]) == 0
        assert "OK" in capsys.readouterr().out


class TestAuditSubcommand:
    def test_default_comparison_table(self, capsys):
        assert main(["audit", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "solver audit" in out
        assert "cold" in out

    def test_audit_rejects_unknown_exhibit(self):
        with pytest.raises(SystemExit):
            main(["audit", "not-a-figure"])


class TestValidateTraceSubcommand:
    def test_needs_a_file(self):
        with pytest.raises(SystemExit):
            main(["validate-trace"])

    def test_missing_file_is_invalid(self, capsys, tmp_path):
        assert main(["validate-trace", str(tmp_path / "nope.json")]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestResilienceFlags:
    QUICK = ["--quick", "--benchmark", "synthetic", "--policies", "static,lp"]
    FAULT = ["--inject-faults", "mode=raise,match=cap=50"]

    def test_keep_going_renders_gap_and_exits_nonzero(self, capsys):
        argv = ["sweep", *self.QUICK, "--caps", "40,50,60",
                "--keep-going", *self.FAULT]
        assert main(argv) == 1
        captured = capsys.readouterr()
        assert "failed cells (1):" in captured.out
        assert "InjectedFault" in captured.out
        assert "keep-going: 1 of 3 cell(s) failed" in captured.err

    def test_keep_going_manifest_records_failures(self, capsys, tmp_path):
        argv = ["sweep", *self.QUICK, "--caps", "40,50,60", "--keep-going",
                *self.FAULT, "--save", str(tmp_path)]
        assert main(argv) == 1
        capsys.readouterr()
        doc = json.loads((tmp_path / "manifest.json").read_text())
        (failure,) = doc["failures"]
        assert failure["cap_per_socket_w"] == 50.0
        assert failure["error_type"] == "InjectedFault"

    def test_clean_manifest_omits_failures(self, capsys, tmp_path):
        argv = ["sweep", *self.QUICK, "--caps", "40,60",
                "--save", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert "failures" not in json.loads((tmp_path / "manifest.json").read_text())

    def test_fault_without_keep_going_aborts_cleanly(self, capsys):
        argv = ["sweep", *self.QUICK, "--caps", "40,50,60", *self.FAULT]
        assert main(argv) == 1
        assert "error: cell cap=50" in capsys.readouterr().err

    def test_run_single_cell_failure_text(self, capsys):
        argv = ["run", *self.QUICK, "--cap", "50", "--keep-going", *self.FAULT]
        assert main(argv) == 1
        out = capsys.readouterr().out
        assert "cell failed: InjectedFault" in out
        assert "failed" in out

    def test_journal_resume_is_byte_identical_to_clean_run(
        self, capsys, tmp_path
    ):
        base = ["sweep", *self.QUICK, "--caps", "40,50,60"]
        journal = str(tmp_path / "j.jsonl")
        assert main([*base, "--keep-going", "--journal", journal, *self.FAULT,
                     "--save", str(tmp_path / "chaos")]) == 1
        assert main([*base, "--keep-going", "--journal", journal,
                     "--save", str(tmp_path / "resumed")]) == 0
        assert main([*base, "--save", str(tmp_path / "clean")]) == 0
        capsys.readouterr()
        for name in ("sweep.txt", "manifest.json"):
            resumed = (tmp_path / "resumed" / name).read_bytes()
            clean = (tmp_path / "clean" / name).read_bytes()
            assert resumed == clean, name

    def test_resilience_flags_require_n_way(self):
        with pytest.raises(SystemExit):
            main(["run", "--quick", "--keep-going"])

    def test_resilience_flags_require_run_or_sweep(self):
        with pytest.raises(SystemExit):
            main(["fig1", "--keep-going"])

    def test_bad_fault_spec_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["sweep", *self.QUICK, "--inject-faults", "mode=bogus"])

    def test_bad_task_retries_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["sweep", *self.QUICK, "--task-retries", "-1"])


class TestTelemetryFlags:
    QUICK = ["--quick", "--benchmark", "synthetic", "--policies", "static,lp"]

    def test_metrics_snapshot_written_and_valid(self, capsys, tmp_path):
        from repro.obs.metrics import validate_metrics_doc

        out = tmp_path / "metrics.json"
        argv = ["sweep", *self.QUICK, "--caps", "40,60",
                "--metrics", str(out)]
        assert main(argv) == 0
        assert f"[metrics -> {out}]" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert validate_metrics_doc(doc) == []
        assert doc["counters"]["cells.computed"] == 2
        assert doc["counters"]["solve.total"] > 0
        assert "cell.wall_s" in doc["operational"]

    def test_metrics_prom_exposition(self, capsys, tmp_path):
        out = tmp_path / "metrics.prom"
        argv = ["sweep", *self.QUICK, "--caps", "40,60",
                "--metrics-prom", str(out)]
        assert main(argv) == 0
        capsys.readouterr()
        text = out.read_text()
        assert "# TYPE repro_cells_computed_total counter" in text
        assert "repro_cells_computed_total 2" in text
        assert 'le="+Inf"' in text

    def test_manifest_embeds_deterministic_metrics_only(self, capsys, tmp_path):
        argv = ["sweep", *self.QUICK, "--caps", "40,60", "--save",
                str(tmp_path), "--metrics", str(tmp_path / "metrics.json")]
        assert main(argv) == 0
        capsys.readouterr()
        doc = json.loads((tmp_path / "manifest.json").read_text())
        embedded = doc["metrics"]
        assert "operational" not in embedded
        assert "cell.wall_s" not in embedded["histograms"]
        assert embedded["counters"]["cells.computed"] == 2
        full = json.loads((tmp_path / "metrics.json").read_text())
        assert "cell.wall_s" in full["histograms"]

    def test_manifest_without_metrics_flag_omits_field(self, capsys, tmp_path):
        argv = ["sweep", *self.QUICK, "--caps", "40,60", "--save", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert "metrics" not in json.loads(
            (tmp_path / "manifest.json").read_text()
        )

    def test_progress_file_records_every_cell(self, capsys, tmp_path):
        out = tmp_path / "progress.jsonl"
        argv = ["sweep", *self.QUICK, "--caps", "40,50,60", "--quiet",
                "--progress-file", str(out),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        capsys.readouterr()
        docs = [json.loads(line) for line in out.read_text().splitlines()]
        assert [d["done"] for d in docs] == [1, 2, 3]
        assert docs[-1]["total"] == 3
        assert docs[-1]["failed"] == 0
        # Cold cache: every lookup (cell-level and solver-level) missed.
        assert docs[-1]["cache_misses"] >= 3
        assert docs[-1]["cache_hit_rate"] == 0.0

    def test_progress_line_suppressed_when_stderr_not_tty(self, capsys):
        argv = ["sweep", *self.QUICK, "--caps", "40,60"]
        assert main(argv) == 0
        assert "cells (" not in capsys.readouterr().err

    def test_progress_flag_forces_the_line_into_a_pipe(self, capsys):
        argv = ["sweep", *self.QUICK, "--caps", "40,60", "--progress"]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "1/2 cells (50%)" in err
        assert "2/2 cells (100%)" in err

    def test_progress_flags_require_run_or_sweep(self):
        with pytest.raises(SystemExit):
            main(["fig1", "--progress"])

    def test_profile_writes_aggregated_table(self, capsys, tmp_path):
        out = tmp_path / "profile.txt"
        argv = ["sweep", *self.QUICK, "--caps", "40,60", "--profile", str(out)]
        assert main(argv) == 0
        assert "[profile: 2 cell(s)" in capsys.readouterr().out
        text = out.read_text()
        assert text.startswith("aggregated profile: 2 profiled cell(s)")
        assert "cumtime" in text

    def test_timings_text_reports_cache_hit_rate(self, capsys, tmp_path):
        argv = ["sweep", *self.QUICK, "--caps", "40,60", "--timings",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache hit rate" in out
        assert "stores" in out


class TestReportSubcommand:
    QUICK = ["--quick", "--benchmark", "synthetic", "--policies", "static,lp"]
    FAULT = ["--inject-faults", "mode=raise,match=cap=50"]

    def _chaos_run(self, tmp_path):
        """A fault-injected, journaled, metric'd sweep's artifacts."""
        journal = tmp_path / "journal.jsonl"
        metrics = tmp_path / "metrics.json"
        argv = ["sweep", *self.QUICK, "--caps", "40,50,60", "--keep-going",
                *self.FAULT, "--journal", str(journal),
                "--metrics", str(metrics), "--save", str(tmp_path)]
        assert main(argv) == 1
        return journal, tmp_path / "manifest.json", metrics

    def test_report_reconstructs_a_fault_injected_run(self, capsys, tmp_path):
        journal, manifest, metrics = self._chaos_run(tmp_path)
        capsys.readouterr()
        argv = ["report", "--journal", str(journal), "--manifest",
                str(manifest), "--metrics", str(metrics)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "sweep report" in out
        assert re.search(r"cells settled\s*:\s*3", out)
        assert re.search(r"cells ok\s*:\s*2", out)
        assert re.search(r"cells failed\s*:\s*1", out)
        assert "benchmark" in out and "synthetic" in out
        assert "per-policy time across the cap grid" in out
        assert "static" in out and "lp" in out
        assert "cache and solver traffic" in out
        assert "failed cells" in out and "InjectedFault" in out
        assert "slowest cells" in out

    def test_report_from_journal_alone(self, capsys, tmp_path):
        journal, _, _ = self._chaos_run(tmp_path)
        capsys.readouterr()
        assert main(["report", "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert re.search(r"cells settled\s*:\s*3", out)
        assert "cache and solver traffic" not in out  # no metrics given

    def test_report_needs_journal(self):
        with pytest.raises(SystemExit):
            main(["report"])

    def test_report_rejects_positionals(self):
        with pytest.raises(SystemExit):
            main(["report", "fig1", "--journal", "j.jsonl"])

    def test_report_missing_metrics_file_is_an_error(self, capsys, tmp_path):
        journal = tmp_path / "j.jsonl"
        journal.write_text("")
        argv = ["report", "--journal", str(journal),
                "--metrics", str(tmp_path / "nope.json")]
        assert main(argv) == 1
        assert "error: report:" in capsys.readouterr().err
