"""Discrete-event execution engine for multi-rank MPI programs.

The engine advances one logical clock per rank through its op list,
matching messages (FIFO per (src, dst, tag) channel, eager protocol) and
synchronizing collectives (a collective completes at the latest entrant's
clock plus the network model's collective cost).  Computation durations and
powers come from the machine models, with the configuration of every task
chosen by a pluggable :class:`ConfigPolicy` — this is where Static,
Conductor, and LP-schedule replay differ.

Timing fidelity knobs mirror the paper's §6.2 overhead measurements:
per-MPI-call profiling overhead (34 µs when tracing), per-task DVFS switch
overhead (145 µs, charged when a policy changes a rank's configuration),
and the policy's own synchronous work at MPI_Pcontrol boundaries (566 µs
per Conductor reallocation), charged to every rank at the barrier.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..exec.timing import count, span
from ..machine.configuration import Configuration
from ..machine.cpu import CpuSpec, XEON_E5_2670
from ..machine.device import NodeSpec
from ..machine.performance import TaskKernel, TaskTimeModel
from ..machine.power import SocketPowerModel
from ..obs.events import CollectiveEvent, MpiWaitEvent, TaskEvent
from ..obs.metrics import inc as metric_inc
from ..obs.recorder import current_recorder
from .network import IB_QDR, NetworkModel
from .program import (
    Application,
    CollectiveOp,
    ComputeOp,
    IrecvOp,
    IsendOp,
    PcontrolOp,
    RecvOp,
    SendOp,
    TaskRef,
    WaitOp,
)

__all__ = [
    "ConfigPolicy",
    "TaskRecord",
    "SimulationResult",
    "Engine",
    "MaxPerformancePolicy",
    "RankPlan",
    "RunPlan",
    "SweepRankPlan",
    "SweepRunPlan",
    "rank_kernel_arrays",
    "batch_task_durations",
    "batch_task_powers",
]


@dataclass(frozen=True)
class TaskRecord:
    """Everything the runtimes and figures need to know about one task run."""

    ref: TaskRef
    iteration: int
    label: str
    config: Configuration
    start_s: float
    duration_s: float
    power_w: float
    kernel: TaskKernel

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def energy_j(self) -> float:
        return self.duration_s * self.power_w


class ConfigPolicy(Protocol):
    """Chooses a configuration for every task; may react at Pcontrol."""

    def configure(
        self,
        ref: TaskRef,
        kernel: TaskKernel,
        iteration: int,
        current: Configuration | None,
    ) -> Configuration:
        """Configuration for the upcoming task.

        ``current`` is the rank's present configuration (None before the
        first task); returning a different one incurs the engine's DVFS
        switch overhead, so policies implement the paper's 1 ms-threshold
        rule by returning ``current`` for short tasks.
        """
        ...

    def on_pcontrol(self, iteration: int, records: list[TaskRecord]) -> float:
        """Hook at each Pcontrol barrier; returns overhead seconds (>= 0)."""
        ...

    def switch_cost_s(self) -> float:
        """Per-configuration-change overhead this policy pays (0 for RAPL)."""
        ...


@dataclass(frozen=True)
class RankPlan:
    """One rank's precomputed task decisions, in task-sequence order.

    ``configs[i]``/``durations[i]``/``powers[i]`` are exactly what the
    scalar event loop would obtain for the rank's i-th compute task from
    ``policy.configure`` + the machine models; the engine consumes them
    in place of those calls on the vectorized path.
    """

    configs: list
    durations: list
    powers: list


@dataclass(frozen=True)
class RunPlan:
    """A whole-run decision table: one :class:`RankPlan` per rank."""

    ranks: list


@dataclass(frozen=True)
class SweepRankPlan:
    """One rank's decisions for every sweep point, in task-sequence order.

    Column ``c`` of each array is exactly the :class:`RankPlan` the c-th
    sweep point would produce: ``configs[i][c]`` / ``durations[i, c]`` /
    ``powers[i, c]`` are the i-th compute task's outcome at that point,
    and ``switch_add[i, c]`` is the DVFS switch cost the event loop would
    charge before the task (0.0 when the configuration carries over —
    adding 0.0 leaves the clock bits untouched, so one fused add per task
    replays the scalar loop's conditional add exactly).
    """

    configs: list  # [n_tasks][n_points] Configuration
    durations: np.ndarray  # [n_tasks, n_points]
    powers: np.ndarray  # [n_tasks, n_points]
    switch_add: np.ndarray  # [n_tasks, n_points]
    n_switches: np.ndarray  # [n_points] int


@dataclass(frozen=True)
class SweepRunPlan:
    """A whole sweep's decision table: one :class:`SweepRankPlan` per rank.

    Consumed by :meth:`Engine.run_sweep`, which replays the application's
    event DAG *once* with vector clocks over the sweep axis instead of
    once per sweep point.
    """

    ranks: list
    n_points: int


@dataclass(frozen=True)
class _KernelArrays:
    """One rank's task-kernel parameters as dense arrays (plan hot path)."""

    kernels: list
    cpu: np.ndarray
    mem: np.ndarray
    pf: np.ndarray
    pm: np.ndarray
    sat: np.ndarray
    ct: np.ndarray
    cp: np.ndarray
    activity: np.ndarray
    mem_int: np.ndarray


def rank_kernel_arrays(app: Application) -> list[_KernelArrays]:
    """Per-rank kernel-parameter arrays, cached on the application.

    Plan-building policies call this once per run; the gather over kernel
    attributes is paid once per application object (sweeps replay the same
    app at many caps, so the cache amortizes it to zero).
    """
    cached = getattr(app, "_plan_kernel_arrays", None)
    if cached is not None:
        return cached
    arrays = []
    for program in app.programs:
        kernels = [op.kernel for op in program if isinstance(op, ComputeOp)]
        arrays.append(_KernelArrays(
            kernels=kernels,
            cpu=np.array([k.cpu_seconds for k in kernels]),
            mem=np.array([k.mem_seconds for k in kernels]),
            pf=np.array([k.parallel_fraction for k in kernels]),
            pm=np.array([k.mem_parallel_fraction for k in kernels]),
            sat=np.array(
                [k.bw_saturation_threads for k in kernels], dtype=np.int64
            ),
            ct=np.array(
                [k.contention_threshold for k in kernels], dtype=np.int64
            ),
            cp=np.array([k.contention_penalty for k in kernels]),
            activity=np.array([k.activity for k in kernels]),
            mem_int=np.array([k.mem_intensity for k in kernels]),
        ))
    app._plan_kernel_arrays = arrays
    return arrays


def batch_task_durations(
    time_model: TaskTimeModel,
    ka: _KernelArrays,
    freq_ghz: np.ndarray,
    threads: np.ndarray,
    duty: np.ndarray,
) -> np.ndarray:
    """Vectorized :meth:`TaskTimeModel.duration` over one rank's tasks.

    Replicates the scalar model's expression order term for term, so the
    results are bit-identical to per-task calls (asserted by tests).
    Skips the scalar path's argument validation: plan inputs come from
    frontier configurations, which are valid by construction.
    """
    g = (1.0 - ka.pf) + ka.pf / threads
    cpu = ka.cpu * g * (time_model.spec.fmax_ghz / freq_ghz)
    base = (1.0 - ka.pm) + ka.pm / np.minimum(threads, ka.sat)
    over = np.maximum(0, threads - ka.ct)
    mem = ka.mem * (base * (1.0 + ka.cp * over))
    return (cpu + mem) / duty


def batch_task_powers(
    power_model: SocketPowerModel,
    ka: _KernelArrays,
    freq_ghz: np.ndarray,
    threads: np.ndarray,
    duty: np.ndarray,
) -> np.ndarray:
    """Vectorized :meth:`SocketPowerModel.power` over one rank's tasks
    (bit-identical to per-task calls; see :func:`batch_task_durations`)."""
    p = power_model.params
    rel = freq_ghz / power_model.spec.fmax_ghz
    dyn = ka.activity * p.p_core_dyn_max * rel**p.freq_exponent
    uncore = p.p_uncore_idle + p.p_uncore_mem * ka.mem_int * duty
    per_core = p.p_core_leak + dyn * duty
    return power_model.efficiency * (uncore + threads * per_core)


def _config_arrays(
    configs: list,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(freq, threads, duty) arrays for a list of configurations."""
    return (
        np.array([c.freq_ghz for c in configs]),
        np.array([c.threads for c in configs], dtype=np.int64),
        np.array([c.duty for c in configs]),
    )


def plan_from_configs(app: Application, engine: "Engine", per_rank_configs: list) -> RunPlan:
    """Assemble a :class:`RunPlan` from per-rank configuration lists,
    batch-evaluating durations and powers with the engine's machine
    models (the shared tail of every planning policy)."""
    arrays = rank_kernel_arrays(app)
    plans = []
    for rank, configs in enumerate(per_rank_configs):
        ka = arrays[rank]
        if configs and engine.nodes is not None and any(c.device for c in configs):
            # Device-qualified configurations: the batch evaluators only
            # know CPU math, so evaluate per task through the node's
            # devices (untagged entries keep the legacy socket models).
            node = engine.nodes[rank]
            durations = []
            powers = []
            for cfg, kernel in zip(configs, ka.kernels):
                if cfg.device:
                    dev = node.device(cfg.device)
                    durations.append(dev.duration(kernel, cfg))
                    powers.append(dev.power(kernel, cfg))
                else:
                    durations.append(
                        engine.time_models[rank].duration(
                            kernel, cfg.freq_ghz, cfg.threads, cfg.duty
                        )
                    )
                    powers.append(
                        engine.power_models[rank].power(
                            cfg.freq_ghz,
                            cfg.threads,
                            activity=kernel.activity,
                            mem_intensity=kernel.mem_intensity,
                            duty=cfg.duty,
                        )
                    )
        elif configs:
            f, n, d = _config_arrays(configs)
            durations = batch_task_durations(
                engine.time_models[rank], ka, f, n, d
            ).tolist()
            powers = batch_task_powers(
                engine.power_models[rank], ka, f, n, d
            ).tolist()
        else:
            durations = []
            powers = []
        plans.append(
            RankPlan(configs=configs, durations=durations, powers=powers)
        )
    return RunPlan(ranks=plans)


def kernel_arrays_as_columns(ka: _KernelArrays) -> _KernelArrays:
    """The same kernel parameters shaped ``[n_tasks, 1]`` so the batch
    evaluators broadcast against ``[n_tasks, n_points]`` configuration
    arrays (cheap views; the elementwise expressions — and therefore the
    result bits — are unchanged)."""
    return _KernelArrays(
        kernels=ka.kernels,
        cpu=ka.cpu[:, None],
        mem=ka.mem[:, None],
        pf=ka.pf[:, None],
        pm=ka.pm[:, None],
        sat=ka.sat[:, None],
        ct=ka.ct[:, None],
        cp=ka.cp[:, None],
        activity=ka.activity[:, None],
        mem_int=ka.mem_int[:, None],
    )


class MaxPerformancePolicy:
    """Power-oblivious baseline: fastest configuration for every task."""

    def __init__(self, spec: CpuSpec = XEON_E5_2670) -> None:
        self._tm = TaskTimeModel(spec)
        self._spec = spec

    def configure(self, ref, kernel, iteration, current):
        return Configuration(self._spec.fmax_ghz, self._tm.best_threads(kernel))

    def plan_run(self, app: Application, engine: "Engine") -> RunPlan:
        """Whole-run plan: best threads per distinct kernel, memoized."""
        best: dict[TaskKernel, Configuration] = {}
        per_rank = []
        for ka in rank_kernel_arrays(app):
            configs = []
            for kernel in ka.kernels:
                cfg = best.get(kernel)
                if cfg is None:
                    cfg = Configuration(
                        self._spec.fmax_ghz, self._tm.best_threads(kernel)
                    )
                    best[kernel] = cfg
                configs.append(cfg)
            per_rank.append(configs)
        return plan_from_configs(app, engine, per_rank)

    def on_pcontrol(self, iteration, records):
        return 0.0

    def switch_cost_s(self) -> float:
        return 0.0


@dataclass
class SimulationResult:
    """Outcome of one engine run."""

    app_name: str
    makespan_s: float
    records: list[TaskRecord]
    n_ranks: int
    mpi_call_count: int
    collective_count: int
    pcontrol_overhead_s: float = 0.0
    dvfs_switch_count: int = 0

    def records_by_rank(self) -> list[list[TaskRecord]]:
        """Task records grouped by rank, in execution order."""
        by_rank: list[list[TaskRecord]] = [[] for _ in range(self.n_ranks)]
        for r in self.records:
            by_rank[r.ref.rank].append(r)
        return by_rank

    def records_for_iteration(self, iteration: int) -> list[TaskRecord]:
        return [r for r in self.records if r.iteration == iteration]

    def iterations(self) -> list[int]:
        return sorted({r.iteration for r in self.records})

    def total_energy_j(self) -> float:
        return sum(r.energy_j for r in self.records)

    def makespan_after_warmup(self, discard_iterations: int) -> float:
        """Span of tasks after discarding warmup iterations (paper §5.3).

        The paper drops the first three iterations (Conductor's exploration
        phase); comparisons measure the steady-state region only.
        """
        kept = [r for r in self.records if r.iteration >= discard_iterations]
        if not kept:
            raise ValueError(
                f"no records beyond iteration {discard_iterations - 1}"
            )
        start = min(r.start_s for r in kept)
        return self.makespan_s - start


class _SweepPointResult(SimulationResult):
    """A :class:`SimulationResult` whose record list materializes lazily.

    A sweep holds every record field as one array column; building
    ``n_tasks`` :class:`TaskRecord` objects per point dominates the
    vectorized sweep's cost when most consumers only read the makespan
    and the (array-computed) timelines.  The ``records`` property builds
    the list on first access — bit-identical to the eager list, in the
    scalar scheduler's emission order.
    """

    def __init__(self, loader, **kwargs) -> None:
        self._loader = loader
        super().__init__(records=None, **kwargs)

    @property
    def records(self) -> list[TaskRecord]:
        if self._records is None:
            self._records = self._loader()
        return self._records

    @records.setter
    def records(self, value) -> None:
        self._records = value


@dataclass
class SweepRunOutcome:
    """Everything :meth:`Engine.run_sweep` learned, column per sweep point.

    ``makespans[c]`` and ``starts[rank][seq, c]`` hold the c-th point's
    scalar outcomes; MPI call/wait/collective counts are shared (the walk
    order is identical at every point).  :meth:`results` views the sweep
    as per-point :class:`SimulationResult` objects with lazily
    materialized records.
    """

    app_name: str
    n_ranks: int
    n_points: int
    makespans: np.ndarray
    starts: list  # per rank: [n_tasks, n_points]
    plan: SweepRunPlan
    emissions: list  # (rank, seq, op) in scheduler emission order
    mpi_call_count: int
    collective_count: int
    pcontrol_overhead_s: float

    def _materialize_records(self, c: int) -> list[TaskRecord]:
        plan = self.plan
        starts = self.starts
        return [
            TaskRecord(
                ref=TaskRef(rank, seq),
                iteration=op.iteration,
                label=op.label,
                config=plan.ranks[rank].configs[seq][c],
                start_s=float(starts[rank][seq, c]),
                duration_s=float(plan.ranks[rank].durations[seq, c]),
                power_w=float(plan.ranks[rank].powers[seq, c]),
                kernel=op.kernel,
            )
            for rank, seq, op in self.emissions
        ]

    def result(self, c: int) -> SimulationResult:
        """The c-th sweep point as a :class:`SimulationResult`."""
        if not (0 <= c < self.n_points):
            raise IndexError(f"sweep point {c} out of range [0, {self.n_points})")
        return _SweepPointResult(
            loader=lambda: self._materialize_records(c),
            app_name=self.app_name,
            makespan_s=float(self.makespans[c]),
            n_ranks=self.n_ranks,
            mpi_call_count=self.mpi_call_count,
            collective_count=self.collective_count,
            pcontrol_overhead_s=self.pcontrol_overhead_s,
            dvfs_switch_count=int(
                sum(rp.n_switches[c] for rp in self.plan.ranks)
            ),
        )

    def results(self) -> list[SimulationResult]:
        """All sweep points (records stay lazy until accessed)."""
        return [self.result(c) for c in range(self.n_points)]


@dataclass
class _RankState:
    clock: float = 0.0
    ptr: int = 0
    config: Configuration | None = None
    collective_idx: int = 0
    waiting_collective: bool = False
    collective_enter_s: float = 0.0
    requests: dict[int, tuple] = field(default_factory=dict)


class Engine:
    """Executes an :class:`Application` under a :class:`ConfigPolicy`.

    Parameters
    ----------
    power_models:
        One per rank (socket) — their efficiency spread is the variability
        the runtimes react to.
    network:
        Interconnect cost model.
    mpi_call_overhead_s:
        CPU cost charged per MPI call (library overhead); the tracer adds
        its measurement cost on top via ``tracing_overhead_s``.
    tracing_overhead_s:
        Extra per-call cost when the profiler is attached (34 µs median in
        the paper).
    vectorized:
        When True (default), policies exposing ``plan_run`` have their
        per-task decisions batch-evaluated up front (numpy over each
        rank's task list) and the event loop replays the plan; results
        are bit-identical to the scalar path (the tests assert this).
        False forces the scalar per-task ``configure`` path — the
        reference oracle.  Policies without ``plan_run`` (the reactive
        runtimes) always take the scalar path.
    """

    def __init__(
        self,
        power_models: list[SocketPowerModel],
        network: NetworkModel = IB_QDR,
        spec: CpuSpec = XEON_E5_2670,
        mpi_call_overhead_s: float = 2e-6,
        tracing_overhead_s: float = 0.0,
        vectorized: bool = True,
        nodes: list[NodeSpec] | None = None,
    ) -> None:
        if not power_models:
            raise ValueError("need at least one power model")
        if nodes is not None and len(nodes) != len(power_models):
            raise ValueError(
                f"got {len(nodes)} nodes for {len(power_models)} power models"
            )
        self.power_models = power_models
        self.network = network
        self.spec = spec
        # Heterogeneous machines: each rank's timing follows its own
        # socket's CpuSpec (identical to `spec` on homogeneous clusters).
        self.time_models = [TaskTimeModel(pm.spec) for pm in power_models]
        self.time_model = TaskTimeModel(spec)  # engine-level fallback
        # Typed-device nodes: configurations carrying a device id are
        # dispatched to that device's models; untagged configurations keep
        # the per-rank socket path above, so legacy runs are bit-identical
        # whether or not nodes are attached.
        self.nodes = list(nodes) if nodes is not None else None
        self.call_cost = mpi_call_overhead_s + tracing_overhead_s
        self.vectorized = vectorized

    # ------------------------------------------------------------------
    def run(
        self,
        app: Application,
        policy: ConfigPolicy,
        vectorized: bool | None = None,
    ) -> SimulationResult:
        """Execute the application to completion under the policy.

        ``vectorized`` overrides the engine default for this run only.
        """
        with span("replay"):
            use_vec = self.vectorized if vectorized is None else vectorized
            plan = None
            if use_vec:
                plan_fn = getattr(policy, "plan_run", None)
                if plan_fn is not None:
                    plan = plan_fn(app, self)
            return self._run(app, policy, plan)

    # ------------------------------------------------------------------
    def run_sweep(
        self,
        app: Application,
        policy: ConfigPolicy,
        plan: SweepRunPlan,
    ) -> SweepRunOutcome:
        """Execute the application once per sweep point, in one DAG walk.

        The event loop's control flow never inspects a clock value:
        blocking (an empty channel, a collective barrier) depends only on
        which ops have executed, message matching is FIFO per channel in
        program order, and the one value-dependent branch — the DVFS
        switch charge — only adds to the clock.  The walk order is
        therefore identical at every sweep point, so this method runs the
        scheduler *once* with each rank's clock held as a vector over the
        sweep axis; every scalar add/max on a clock becomes the same
        elementwise operation, making each point's materialized
        :class:`SimulationResult` bit-identical — records, order, and
        makespan — to a scalar :meth:`run` at that point's plan (the
        tests assert this).

        Requires no active trace recorder (per-event emission would need
        scalar timestamps); callers with a recorder attached should fall
        back to per-point :meth:`run` calls.  ``policy.on_pcontrol`` is
        consulted with an empty record list, so only record-oblivious
        policies (replay and other plan-based policies) are supported.
        """
        from ..obs.recorder import current_recorder as _cr

        if _cr() is not None:
            raise RuntimeError(
                "run_sweep cannot emit per-event traces; run each sweep "
                "point through Engine.run when a recorder is active"
            )
        if app.n_ranks != len(self.power_models):
            raise ValueError(
                f"application has {app.n_ranks} ranks but engine has "
                f"{len(self.power_models)} power models"
            )
        with span("replay.sweep"):
            return self._run_sweep(app, policy, plan)

    def _run_sweep(
        self,
        app: Application,
        policy: ConfigPolicy,
        plan: SweepRunPlan,
    ) -> SweepRunOutcome:
        app.validate()
        n = app.n_ranks
        n_points = plan.n_points
        states = [_RankState() for _ in range(n)]
        clocks = [np.zeros(n_points) for _ in range(n)]
        enter = [None] * n  # collective-entry clock vectors
        channels: dict[tuple[int, int, int], deque[np.ndarray]] = {}
        #: compute emissions in scheduler order: (rank, seq, op)
        emissions: list[tuple[int, int, ComputeOp]] = []
        starts = [
            np.zeros((len(rp.durations), n_points)) for rp in plan.ranks
        ]
        task_seq = [0] * n
        mpi_calls = 0
        mpi_waits = 0
        collectives = 0
        pcontrol_overhead = 0.0
        call_cost = self.call_cost
        switch_cost = policy.switch_cost_s()

        def try_advance(rank: int) -> bool:
            nonlocal mpi_calls, mpi_waits
            st = states[rank]
            clock = clocks[rank]
            if st.waiting_collective or st.ptr >= len(app.programs[rank]):
                return False
            op = app.programs[rank][st.ptr]

            if isinstance(op, ComputeOp):
                seq = task_seq[rank]
                rank_plan = plan.ranks[rank]
                clock += rank_plan.switch_add[seq]
                starts[rank][seq] = clock
                emissions.append((rank, seq, op))
                clock += rank_plan.durations[seq]
                task_seq[rank] += 1
                st.ptr += 1
                return True

            if isinstance(op, SendOp):
                clock += call_cost
                mpi_calls += 1
                channels.setdefault((rank, op.dst, op.tag), deque()).append(
                    clock + self.network.message_time(op.size_bytes)
                )
                st.ptr += 1
                return True

            if isinstance(op, IsendOp):
                clock += call_cost
                mpi_calls += 1
                channels.setdefault((rank, op.dst, op.tag), deque()).append(
                    clock + self.network.message_time(op.size_bytes)
                )
                st.requests[op.request] = ("send",)
                st.ptr += 1
                return True

            if isinstance(op, IrecvOp):
                clock += call_cost
                mpi_calls += 1
                st.requests[op.request] = ("recv", op.src, op.tag)
                st.ptr += 1
                return True

            if isinstance(op, RecvOp):
                q = channels.get((op.src, rank, op.tag))
                if not q:
                    return False  # blocked: matching send not yet executed
                t_arrive = q.popleft()
                np.maximum(clock, t_arrive, out=clock)
                clock += call_cost
                mpi_calls += 1
                mpi_waits += 1
                st.ptr += 1
                return True

            if isinstance(op, WaitOp):
                req = st.requests.get(op.request)
                if req is None:
                    raise RuntimeError(
                        f"rank {rank}: wait on unposted request {op.request}"
                    )
                if req[0] == "send":
                    clock += call_cost  # eager send: wait is immediate
                else:
                    _, src, tag = req
                    q = channels.get((src, rank, tag))
                    if not q:
                        return False
                    t_arrive = q.popleft()
                    np.maximum(clock, t_arrive, out=clock)
                    clock += call_cost
                mpi_calls += 1
                mpi_waits += 1
                del st.requests[op.request]
                st.ptr += 1
                return True

            if isinstance(op, (CollectiveOp, PcontrolOp)):
                if isinstance(op, CollectiveOp) and op.participants is not None:
                    if tuple(sorted(op.participants)) != tuple(range(n)):
                        raise NotImplementedError(
                            "engine supports all-rank collectives only"
                        )
                clock += call_cost
                mpi_calls += 1
                st.waiting_collective = True
                enter[rank] = clock
                return False  # resolved collectively below

            raise TypeError(f"unknown op {op!r}")

        def resolve_collective() -> bool:
            nonlocal collectives, pcontrol_overhead
            if not all(st.waiting_collective for st in states):
                return False
            ops = [app.programs[r][states[r].ptr] for r in range(n)]
            first = ops[0]
            if not all(type(op) is type(first) for op in ops):
                raise RuntimeError(
                    f"collective mismatch across ranks: "
                    f"{[type(o).__name__ for o in ops]}"
                )
            done = enter[0]
            for r in range(1, n):
                done = np.maximum(done, enter[r])
            if isinstance(first, PcontrolOp):
                overhead = policy.on_pcontrol(first.iteration, [])
                if overhead < 0:
                    raise ValueError("pcontrol overhead must be >= 0")
                done = done + overhead
                pcontrol_overhead += overhead
            else:
                size = max(
                    op.size_bytes for op in ops if isinstance(op, CollectiveOp)
                )
                done = done + self.network.collective_time(
                    first.kind, n, size
                )
            collectives += 1
            for r, st in enumerate(states):
                clocks[r] = done.copy()
                st.waiting_collective = False
                st.ptr += 1
            return True

        # Main scheduler loop — the same fixpoint as the scalar engine;
        # only the clock arithmetic is vectorized.
        progress = True
        while progress:
            progress = False
            for rank in range(n):
                while try_advance(rank):
                    progress = True
            if resolve_collective():
                progress = True

        unfinished = [
            r for r in range(n) if states[r].ptr < len(app.programs[r])
        ]
        if unfinished:
            details = {
                r: repr(app.programs[r][states[r].ptr]) for r in unfinished
            }
            raise RuntimeError(f"deadlock: ranks blocked at {details}")

        makespans = clocks[0]
        for r in range(1, n):
            makespans = np.maximum(makespans, clocks[r])

        count("sim.tasks", len(emissions) * n_points)
        count("sim.mpi_waits", mpi_waits * n_points)
        count("sim.collectives", collectives * n_points)
        metric_inc("sim.tasks", len(emissions) * n_points)
        metric_inc("sim.mpi_waits", mpi_waits * n_points)
        metric_inc("sim.collectives", collectives * n_points)

        return SweepRunOutcome(
            app_name=app.name,
            n_ranks=n,
            n_points=n_points,
            makespans=makespans,
            starts=starts,
            plan=plan,
            emissions=emissions,
            mpi_call_count=mpi_calls,
            collective_count=collectives,
            pcontrol_overhead_s=pcontrol_overhead,
        )

    def _run(
        self,
        app: Application,
        policy: ConfigPolicy,
        plan: RunPlan | None = None,
    ) -> SimulationResult:
        if app.n_ranks != len(self.power_models):
            raise ValueError(
                f"application has {app.n_ranks} ranks but engine has "
                f"{len(self.power_models)} power models"
            )
        app.validate()
        n = app.n_ranks
        states = [_RankState() for _ in range(n)]
        channels: dict[tuple[int, int, int], deque[float]] = {}
        records: list[TaskRecord] = []
        task_seq = [0] * n
        iteration_records: list[TaskRecord] = []
        mpi_calls = 0
        mpi_waits = 0
        collectives = 0
        pcontrol_overhead = 0.0
        dvfs_switches = 0
        # Tracing: one contextvar read per run; with tracing off the only
        # per-event cost is a local `is not None` branch.
        rec = current_recorder()

        def arrival(src: int, dst: int, tag: int, send_time: float, size: int) -> None:
            channels.setdefault((src, dst, tag), deque()).append(
                send_time + self.network.message_time(size)
            )

        def try_advance(rank: int) -> bool:
            nonlocal mpi_calls, mpi_waits, dvfs_switches
            st = states[rank]
            if st.waiting_collective or st.ptr >= len(app.programs[rank]):
                return False
            op = app.programs[rank][st.ptr]

            if isinstance(op, ComputeOp):
                seq = task_seq[rank]
                ref = TaskRef(rank, seq)
                if plan is not None:
                    # Vectorized path: the policy's whole-run plan holds
                    # the exact configure/duration/power outcomes.
                    rank_plan = plan.ranks[rank]
                    cfg = rank_plan.configs[seq]
                    duration = rank_plan.durations[seq]
                    power = rank_plan.powers[seq]
                else:
                    cfg = policy.configure(
                        ref, op.kernel, op.iteration, st.config
                    )
                    if cfg.device and self.nodes is not None:
                        dev = self.nodes[rank].device(cfg.device)
                        duration = dev.duration(op.kernel, cfg)
                        power = dev.power(op.kernel, cfg)
                    else:
                        duration = self.time_models[rank].duration(
                            op.kernel, cfg.freq_ghz, cfg.threads, cfg.duty
                        )
                        power = self.power_models[rank].power(
                            cfg.freq_ghz,
                            cfg.threads,
                            activity=op.kernel.activity,
                            mem_intensity=op.kernel.mem_intensity,
                            duty=cfg.duty,
                        )
                if st.config is not None and cfg != st.config:
                    st.clock += policy.switch_cost_s()
                    dvfs_switches += 1
                st.config = cfg
                rec_task = TaskRecord(
                    ref=ref, iteration=op.iteration, label=op.label, config=cfg,
                    start_s=st.clock, duration_s=duration, power_w=power,
                    kernel=op.kernel,
                )
                records.append(rec_task)
                iteration_records.append(rec_task)
                if rec is not None:
                    rec.emit(TaskEvent(
                        label=op.label, rank=rank, iteration=op.iteration,
                        ts_s=st.clock, dur_s=duration,
                        freq_ghz=cfg.freq_ghz, threads=cfg.threads,
                        duty=cfg.duty, power_w=power,
                    ))
                st.clock += duration
                task_seq[rank] += 1
                st.ptr += 1
                return True

            if isinstance(op, SendOp):
                st.clock += self.call_cost
                mpi_calls += 1
                arrival(rank, op.dst, op.tag, st.clock, op.size_bytes)
                st.ptr += 1
                return True

            if isinstance(op, IsendOp):
                st.clock += self.call_cost
                mpi_calls += 1
                arrival(rank, op.dst, op.tag, st.clock, op.size_bytes)
                st.requests[op.request] = ("send",)
                st.ptr += 1
                return True

            if isinstance(op, IrecvOp):
                st.clock += self.call_cost
                mpi_calls += 1
                st.requests[op.request] = ("recv", op.src, op.tag)
                st.ptr += 1
                return True

            if isinstance(op, RecvOp):
                q = channels.get((op.src, rank, op.tag))
                if not q:
                    return False  # blocked: matching send not yet executed
                t_arrive = q.popleft()
                if rec is not None and t_arrive > st.clock:
                    rec.emit(MpiWaitEvent(
                        name="recv", rank=rank, ts_s=st.clock,
                        dur_s=t_arrive - st.clock,
                    ))
                st.clock = max(st.clock, t_arrive) + self.call_cost
                mpi_calls += 1
                mpi_waits += 1
                st.ptr += 1
                return True

            if isinstance(op, WaitOp):
                req = st.requests.get(op.request)
                if req is None:
                    raise RuntimeError(
                        f"rank {rank}: wait on unposted request {op.request}"
                    )
                if req[0] == "send":
                    st.clock += self.call_cost  # eager send: wait is immediate
                else:
                    _, src, tag = req
                    q = channels.get((src, rank, tag))
                    if not q:
                        return False
                    t_arrive = q.popleft()
                    if rec is not None and t_arrive > st.clock:
                        rec.emit(MpiWaitEvent(
                            name="wait", rank=rank, ts_s=st.clock,
                            dur_s=t_arrive - st.clock,
                        ))
                    st.clock = max(st.clock, t_arrive) + self.call_cost
                mpi_calls += 1
                mpi_waits += 1
                del st.requests[op.request]
                st.ptr += 1
                return True

            if isinstance(op, (CollectiveOp, PcontrolOp)):
                if isinstance(op, CollectiveOp) and op.participants is not None:
                    if tuple(sorted(op.participants)) != tuple(range(n)):
                        raise NotImplementedError(
                            "engine supports all-rank collectives only"
                        )
                st.clock += self.call_cost
                mpi_calls += 1
                st.waiting_collective = True
                st.collective_enter_s = st.clock
                return False  # resolved collectively below

            raise TypeError(f"unknown op {op!r}")

        def resolve_collective() -> bool:
            nonlocal collectives, pcontrol_overhead, iteration_records
            if not all(st.waiting_collective for st in states):
                return False
            ops = [app.programs[r][states[r].ptr] for r in range(n)]
            first = ops[0]
            if not all(type(op) is type(first) for op in ops):
                raise RuntimeError(
                    f"collective mismatch across ranks: {[type(o).__name__ for o in ops]}"
                )
            done = max(st.collective_enter_s for st in states)
            if isinstance(first, PcontrolOp):
                name = "pcontrol"
                overhead = policy.on_pcontrol(first.iteration, list(iteration_records))
                if overhead < 0:
                    raise ValueError("pcontrol overhead must be >= 0")
                done += overhead
                pcontrol_overhead += overhead
                iteration_records = []
            else:
                name = first.kind
                size = max(
                    op.size_bytes for op in ops if isinstance(op, CollectiveOp)
                )
                done += self.network.collective_time(name, n, size)
            collectives += 1
            if rec is not None:
                for r, st in enumerate(states):
                    rec.emit(CollectiveEvent(
                        name=name, rank=r, ts_s=st.collective_enter_s,
                        dur_s=done - st.collective_enter_s,
                    ))
            for st in states:
                st.clock = done
                st.waiting_collective = False
                st.ptr += 1
            return True

        # Main scheduler loop: keep scanning until no rank can progress.
        progress = True
        while progress:
            progress = False
            for rank in range(n):
                while try_advance(rank):
                    progress = True
            if resolve_collective():
                progress = True

        unfinished = [
            r for r in range(n) if states[r].ptr < len(app.programs[r])
        ]
        if unfinished:
            details = {
                r: repr(app.programs[r][states[r].ptr]) for r in unfinished
            }
            raise RuntimeError(f"deadlock: ranks blocked at {details}")

        count("sim.tasks", len(records))
        count("sim.mpi_waits", mpi_waits)
        count("sim.collectives", collectives)
        metric_inc("sim.tasks", len(records))
        metric_inc("sim.mpi_waits", mpi_waits)
        metric_inc("sim.collectives", collectives)
        return SimulationResult(
            app_name=app.name,
            makespan_s=max(st.clock for st in states),
            records=records,
            n_ranks=n,
            mpi_call_count=mpi_calls,
            collective_count=collectives,
            pcontrol_overhead_s=pcontrol_overhead,
            dvfs_switch_count=dvfs_switches,
        )
