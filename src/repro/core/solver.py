"""Sparse LP/MILP assembly and solution on SciPy's HiGHS backend.

A thin, explicit layer between the paper's formulations and
``scipy.optimize.linprog`` / ``scipy.optimize.milp``: named variables with
bounds and optional integrality, two-sided sparse constraints, minimize
objective.  Keeping assembly in COO triplets and converting once keeps the
build linear in the number of nonzeros (the event-power constraints of a
32-rank trace contribute hundreds of thousands of entries).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
import scipy.optimize as sopt
import scipy.sparse as sp

__all__ = ["LpStatus", "LpSolution", "LinearProgram", "InfeasibleError"]


class LpStatus(enum.Enum):
    """Solver termination states (mapped from HiGHS status codes)."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


class InfeasibleError(RuntimeError):
    """Raised by callers that require a feasible model (e.g. tight caps)."""


@dataclass
class LpSolution:
    """Solver outcome: status, objective, and the primal vector."""

    status: LpStatus
    objective: float
    x: np.ndarray
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.status is LpStatus.OPTIMAL


@dataclass
class _Constraint:
    idx: list
    coeff: list
    lb: float
    ub: float


class LinearProgram:
    """Incrementally built minimize-c·x linear (or mixed-integer) program."""

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._lb: list[float] = []
        self._ub: list[float] = []
        self._integrality: list[int] = []
        self._names: dict[str, int] = {}
        self._objective: dict[int, float] = {}
        self._constraints: list[_Constraint] = []

    # ------------------------------------------------------------------
    @property
    def n_vars(self) -> int:
        return len(self._lb)

    @property
    def n_constraints(self) -> int:
        return len(self._constraints)

    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = np.inf,
        integer: bool = False,
    ) -> int:
        """Register a variable; returns its column index."""
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        if lb > ub:
            raise ValueError(f"variable {name}: lb {lb} > ub {ub}")
        idx = len(self._lb)
        self._names[name] = idx
        self._lb.append(lb)
        self._ub.append(ub)
        self._integrality.append(1 if integer else 0)
        return idx

    def var(self, name: str) -> int:
        return self._names[name]

    def var_bounds(self, idx: int) -> tuple[float, float]:
        """(lower, upper) bounds of a variable by column index."""
        return self._lb[idx], self._ub[idx]

    def add_constraint(
        self,
        terms: dict[int, float],
        lb: float = -np.inf,
        ub: float = np.inf,
        label: str = "",
    ) -> None:
        """Add ``lb <= sum(coeff * x) <= ub`` (duplicate indices accumulate)."""
        if not terms:
            raise ValueError(f"empty constraint {label!r}")
        if lb > ub:
            raise ValueError(f"constraint {label!r}: lb {lb} > ub {ub}")
        self._constraints.append(
            _Constraint(list(terms.keys()), list(terms.values()), lb, ub)
        )

    def add_eq(self, terms: dict[int, float], rhs: float, label: str = "") -> None:
        self.add_constraint(terms, lb=rhs, ub=rhs, label=label)

    def add_ge(self, terms: dict[int, float], rhs: float, label: str = "") -> None:
        self.add_constraint(terms, lb=rhs, label=label)

    def add_le(self, terms: dict[int, float], rhs: float, label: str = "") -> None:
        self.add_constraint(terms, ub=rhs, label=label)

    def set_objective(self, terms: dict[int, float]) -> None:
        """Minimization objective (replaces any previous one)."""
        self._objective = dict(terms)

    # ------------------------------------------------------------------
    def _assemble(self) -> tuple[np.ndarray, sp.csr_matrix, np.ndarray, np.ndarray]:
        c = np.zeros(self.n_vars)
        for idx, coeff in self._objective.items():
            c[idx] += coeff
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        lo = np.empty(self.n_constraints)
        hi = np.empty(self.n_constraints)
        for r, con in enumerate(self._constraints):
            rows.extend([r] * len(con.idx))
            cols.extend(con.idx)
            vals.extend(con.coeff)
            lo[r] = con.lb
            hi[r] = con.ub
        a = sp.coo_matrix(
            (vals, (rows, cols)), shape=(self.n_constraints, self.n_vars)
        ).tocsr()
        a.sum_duplicates()
        return c, a, lo, hi

    @property
    def is_mip(self) -> bool:
        return any(self._integrality)

    def solve(self, time_limit_s: float | None = None) -> LpSolution:
        """Solve with HiGHS; dispatches to the MIP solver when needed."""
        c, a, lo, hi = self._assemble()
        if self.is_mip:
            return self._solve_milp(c, a, lo, hi, time_limit_s)
        return self._solve_lp(c, a, lo, hi, time_limit_s)

    def _solve_lp(self, c, a, lo, hi, time_limit_s) -> LpSolution:
        # linprog wants one-sided rows: split two-sided into <= pairs.
        ub_rows = np.isfinite(hi)
        lb_rows = np.isfinite(lo)
        a_ub = sp.vstack(
            [a[ub_rows], -a[lb_rows]], format="csr"
        ) if (ub_rows.any() or lb_rows.any()) else None
        b_ub = (
            np.concatenate([hi[ub_rows], -lo[lb_rows]])
            if a_ub is not None
            else None
        )
        options = {"presolve": True}
        if time_limit_s is not None:
            options["time_limit"] = time_limit_s
        res = sopt.linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            bounds=list(zip(self._lb, self._ub)),
            method="highs",
            options=options,
        )
        return self._wrap(res)

    def _solve_milp(self, c, a, lo, hi, time_limit_s) -> LpSolution:
        constraints = sopt.LinearConstraint(a, lo, hi)
        bounds = sopt.Bounds(np.array(self._lb), np.array(self._ub))
        options = {}
        if time_limit_s is not None:
            options["time_limit"] = time_limit_s
        res = sopt.milp(
            c,
            constraints=constraints,
            bounds=bounds,
            integrality=np.array(self._integrality),
            options=options,
        )
        return self._wrap(res)

    @staticmethod
    def _wrap(res) -> LpSolution:
        if res.status == 0:
            status = LpStatus.OPTIMAL
        elif res.status == 2:
            status = LpStatus.INFEASIBLE
        elif res.status == 3:
            status = LpStatus.UNBOUNDED
        else:
            status = LpStatus.ERROR
        x = res.x if res.x is not None else np.array([])
        obj = float(res.fun) if res.fun is not None else float("nan")
        return LpSolution(
            status=status, objective=obj, x=np.asarray(x), message=str(res.message)
        )
