"""Unit tests for static schedule validation."""

import dataclasses

import pytest

from repro.core import (
    round_schedule,
    solve_fixed_order_lp,
    validate_schedule,
)
from repro.core.schedule import PowerSchedule
from repro.machine import ConfigPoint, Configuration, SocketPowerModel, TaskKernel
from repro.simulator import TaskRef, trace_application

from ..conftest import make_p2p_app

CAP = 58.0


@pytest.fixture(scope="module")
def setup():
    kernel = TaskKernel(cpu_seconds=1.0, mem_seconds=0.2,
                        parallel_fraction=0.98, mem_parallel_fraction=0.9,
                        bw_saturation_threads=4, mem_intensity=0.3)
    models = [SocketPowerModel(), SocketPowerModel(efficiency=1.05)]
    trace = trace_application(make_p2p_app(kernel, iterations=2), models)
    lp = solve_fixed_order_lp(trace, CAP)
    return trace, lp.schedule


class TestValidSchedules:
    def test_lp_schedule_validates(self, setup):
        trace, sched = setup
        report = validate_schedule(trace, sched)
        assert report.ok, report.violations
        assert report.peak_event_power_w <= CAP * (1 + 1e-6)
        assert "OK" in report.summary()

    def test_floor_rounded_validates(self, setup):
        trace, sched = setup
        disc = round_schedule(trace, sched, mode="floor")
        report = validate_schedule(trace, disc)
        assert report.ok, report.violations

    def test_nearest_rounding_may_overdraw_slightly(self, setup):
        """'nearest' can round power upward; validation quantifies by how
        much instead of silently passing."""
        trace, sched = setup
        disc = round_schedule(trace, sched, mode="nearest")
        report = validate_schedule(trace, disc)
        # Either fine, or flagged with a bounded overshoot.
        if not report.ok:
            assert report.peak_event_power_w < CAP * 1.10


class TestViolationsDetected:
    def test_missing_assignment(self, setup):
        trace, sched = setup
        broken = PowerSchedule(
            kind=sched.kind, cap_w=sched.cap_w, objective_s=sched.objective_s,
            assignments={
                ref: a
                for ref, a in sched.assignments.items()
                if ref != TaskRef(0, 0)
            },
            vertex_times=sched.vertex_times,
        )
        report = validate_schedule(trace, broken)
        assert not report.ok
        assert any("no assignment" in v for v in report.violations)

    def test_off_frontier_config(self, setup):
        trace, sched = setup
        ref = TaskRef(0, 0)
        fake_point = ConfigPoint(Configuration(9.9, 3), 0.5, 20.0)
        assignments = dict(sched.assignments)
        assignments[ref] = dataclasses.replace(
            assignments[ref], mixture=((fake_point, 1.0),),
            duration_s=0.5, power_w=20.0,
        )
        broken = PowerSchedule(
            kind=sched.kind, cap_w=sched.cap_w, objective_s=sched.objective_s,
            assignments=assignments, vertex_times=sched.vertex_times,
        )
        report = validate_schedule(trace, broken)
        assert any("not on the task's frontier" in v for v in report.violations)

    def test_precedence_violation(self, setup):
        trace, sched = setup
        squashed = PowerSchedule(
            kind=sched.kind, cap_w=sched.cap_w, objective_s=0.0,
            assignments=sched.assignments,
            vertex_times=sched.vertex_times * 0.0,  # everything at t=0
        )
        report = validate_schedule(trace, squashed)
        assert not report.ok
        assert report.max_precedence_gap_s > 0
        assert any("needs" in v for v in report.violations)

    def test_power_violation(self, setup):
        trace, sched = setup
        tight = PowerSchedule(
            kind=sched.kind, cap_w=20.0,  # far below what the tasks draw
            objective_s=sched.objective_s,
            assignments=sched.assignments,
            vertex_times=sched.vertex_times,
        )
        report = validate_schedule(trace, tight)
        assert any("over cap" in v for v in report.violations)

    def test_violation_cap(self, setup):
        trace, sched = setup
        tight = PowerSchedule(
            kind=sched.kind, cap_w=1.0, objective_s=sched.objective_s,
            assignments=sched.assignments, vertex_times=sched.vertex_times,
        )
        report = validate_schedule(trace, tight, max_reported=3)
        assert len(report.violations) <= 3
