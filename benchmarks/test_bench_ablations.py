"""Ablations of the design choices DESIGN.md calls out.

Not a paper exhibit — these quantify why the paper's pipeline is built the
way it is:

* **convexification** — restricting tasks to the convex Pareto frontier
  loses nothing for the continuous LP (mixtures reach the hull anyway);
* **rounding mode** — the paper's 'nearest' rounding vs the cap-safe
  'floor' vs 'dominant': objective and cap-compliance trade-off;
* **discrete MILP vs LP+rounding** — the relaxation gap the paper reports
  as "similar results";
* **power tiebreak** — the secondary objective never trades makespan;
* **energy LP vs power LP** — the related-work objective really is a
  different problem (the paper's §7 argument);
* **Conductor knobs** — measurement noise and reallocation period drive
  the thrash/regression behaviour.
"""

import pytest

from repro.core import (
    round_schedule,
    solve_energy_lp,
    solve_fixed_order_lp,
)
from repro.experiments.runner import make_power_models
from repro.simulator import Trace, trace_application
from repro.workloads import WorkloadSpec, imbalanced_collective_app, make_comd

from conftest import engage

CAP_PER_RANK = 32.0


@pytest.fixture(scope="module")
def small_trace():
    app = imbalanced_collective_app(n_ranks=4, iterations=2, spread=1.5)
    return trace_application(app, make_power_models(4, 11))


@pytest.fixture(scope="module")
def comd_trace():
    app = make_comd(WorkloadSpec(n_ranks=8, iterations=4, seed=5))
    return trace_application(app, make_power_models(8, 11))


def test_ablation_convexification_lossless(benchmark, comd_trace):
    """Continuous LP over the full Pareto set equals the LP over the convex
    hull: hull pruning is a pure model-size optimization."""
    cap = 8 * CAP_PER_RANK
    hull_res = benchmark.pedantic(
        solve_fixed_order_lp, args=(comd_trace, cap), rounds=1, iterations=1
    )
    fat = Trace(
        app=comd_trace.app,
        graph=comd_trace.graph,
        task_edges=comd_trace.task_edges,
        edge_refs=comd_trace.edge_refs,
        pareto=comd_trace.pareto,
        frontiers=dict(comd_trace.pareto),  # full Pareto as the "frontier"
    )
    fat_res = solve_fixed_order_lp(fat, cap)
    assert hull_res.makespan_s == pytest.approx(fat_res.makespan_s, rel=1e-6)
    # ... while the hull model is materially smaller.
    assert (
        hull_res.schedule.solver_info["n_vars"]
        < fat_res.schedule.solver_info["n_vars"]
    )


def test_ablation_rounding_modes(benchmark, comd_trace):
    """'nearest' (the paper's rule) lands closest to the LP objective;
    'floor' is slower but can never overdraw any event."""
    engage(benchmark)
    cap = 8 * CAP_PER_RANK
    cont = solve_fixed_order_lp(comd_trace, cap)
    by_mode = {
        mode: round_schedule(comd_trace, cont.schedule, mode)
        for mode in ("nearest", "floor", "dominant")
    }
    assert by_mode["floor"].objective_s >= cont.makespan_s - 1e-9
    gap_nearest = abs(by_mode["nearest"].objective_s - cont.makespan_s)
    gap_floor = abs(by_mode["floor"].objective_s - cont.makespan_s)
    assert gap_nearest <= gap_floor + 1e-9
    # Floor never exceeds the LP's per-task power.
    for ref, a in by_mode["floor"].assignments.items():
        lowest = min(
            p.power_w for p in comd_trace.frontiers[a.edge_id]
        )
        assert (
            a.power_w <= cont.schedule.assignments[ref].power_w + 1e-9
            or a.power_w == pytest.approx(lowest)
        )


def test_ablation_discrete_vs_rounding(benchmark, small_trace):
    """The exact MILP beats heuristic rounding by at most a few percent —
    the justification for shipping the LP+rounding pipeline."""
    engage(benchmark)
    cap = 4 * CAP_PER_RANK
    cont = solve_fixed_order_lp(small_trace, cap)
    disc = solve_fixed_order_lp(small_trace, cap, discrete=True)
    rounded = round_schedule(small_trace, cont.schedule, mode="floor")
    assert cont.makespan_s <= disc.makespan_s <= rounded.objective_s + 1e-9
    assert rounded.objective_s <= disc.makespan_s * 1.10


def test_ablation_power_tiebreak_neutral(benchmark, comd_trace):
    """The tiny power term selects among optima without moving the
    makespan, while cutting gold-plated power substantially."""
    engage(benchmark)
    cap = 8 * 60.0  # loose cap: lots of equal-makespan freedom
    with_tb = solve_fixed_order_lp(comd_trace, cap, power_tiebreak=1e-9)
    without = solve_fixed_order_lp(comd_trace, cap, power_tiebreak=0.0)
    assert with_tb.makespan_s == pytest.approx(without.makespan_s, rel=1e-6)
    assert (
        with_tb.schedule.total_average_power()
        <= without.schedule.total_average_power() + 1e-6
    )


def test_ablation_energy_vs_power_objectives(benchmark, comd_trace):
    """§7's argument quantified: the energy-optimal schedule needs more
    instantaneous power than realistic caps provide, and the power-capped
    schedule is slower than the energy optimum's time budget."""
    engage(benchmark)
    energy = solve_energy_lp(comd_trace, slowdown=0.0)
    capped = solve_fixed_order_lp(comd_trace, 8 * 30.0)
    assert energy.feasible and capped.feasible
    assert capped.makespan_s > energy.makespan_s
    # Energy optimum at max speed on the critical rank -> peak concurrent
    # power above 8 ranks x 30 W.
    ev = capped.events
    peak = max(
        sum(
            energy.schedule.assignments[comd_trace.edge_refs[e]].power_w
            for e in act
        )
        for act in ev.active.values()
        if act
    )
    assert peak > 8 * 30.0


def test_ablation_conductor_noise(benchmark):
    """Measurement noise is what costs Conductor performance: the
    noiseless controller converges at least as fast."""
    engage(benchmark)
    from repro.runtime import ConductorConfig, ConductorPolicy
    from repro.simulator import Engine

    app = imbalanced_collective_app(n_ranks=4, iterations=16, spread=1.5)
    models = make_power_models(4, 11)
    engine = Engine(models)
    times = {}
    for label, noise in (("clean", 0.0), ("noisy", 0.05)):
        policy = ConductorPolicy(
            models, 4 * 30.0, app,
            config=ConductorConfig(realloc_period=2, step_w=4.0,
                                   measurement_noise=noise, seed=5),
        )
        res = engine.run(app, policy)
        start = min(r.start_s for r in res.records if r.iteration >= 10)
        times[label] = res.makespan_s - start
    assert times["clean"] <= times["noisy"] * 1.02


def test_ablation_realloc_period(benchmark):
    """Slower reallocation (the paper's 5-10 Pcontrol cadence) converges
    later: the trailing-window time is no better than a tight cadence."""
    engage(benchmark)
    from repro.runtime import ConductorConfig, ConductorPolicy
    from repro.simulator import Engine

    app = imbalanced_collective_app(n_ranks=4, iterations=16, spread=1.6)
    models = make_power_models(4, 11)
    engine = Engine(models)
    tails = {}
    for period in (1, 8):
        policy = ConductorPolicy(
            models, 4 * 28.0, app,
            config=ConductorConfig(realloc_period=period, step_w=2.0,
                                   measurement_noise=0.0, seed=5),
        )
        res = engine.run(app, policy)
        start = min(r.start_s for r in res.records if r.iteration >= 10)
        tails[period] = res.makespan_s - start
    assert tails[1] <= tails[8] * 1.05


def test_ablation_profile_noise_robustness(benchmark, comd_trace):
    """How sensitive is the LP to measurement noise in the profiles?
    Solve on a noisy trace, then re-cost the chosen configurations with
    the clean model: the schedule quality degrades gracefully (a few
    percent at 5% noise), supporting the paper's use of measured
    exploration data."""
    engage(benchmark)
    from repro.simulator import trace_application
    from repro.workloads import WorkloadSpec, make_comd

    cap = 8 * CAP_PER_RANK
    app = make_comd(WorkloadSpec(n_ranks=8, iterations=4, seed=5))
    models = make_power_models(8, 11)
    clean = solve_fixed_order_lp(comd_trace, cap)

    noisy_trace = trace_application(app, models, measurement_noise=0.05,
                                    seed=3)
    noisy = solve_fixed_order_lp(noisy_trace, cap)
    assert noisy.feasible
    # Re-cost: replay the noisy schedule's *configurations* against the
    # clean frontiers by matching configs per task.
    recost = 0.0
    for ref, a in noisy.schedule.assignments.items():
        frontier = comd_trace.frontiers[comd_trace.task_edges[ref]]
        by_cfg = {p.config: p for p in frontier}
        d = sum(
            by_cfg[p.config].duration_s * f
            for p, f in a.mixture
            if p.config in by_cfg
        )
        covered = sum(f for p, f in a.mixture if p.config in by_cfg)
        if covered > 0:
            recost = max(recost, d / covered)
    # The noisy-informed schedule is near the clean bound, not wildly off.
    assert noisy.makespan_s == pytest.approx(clean.makespan_s, rel=0.10)


def test_ablation_cluster_repartitioning(benchmark):
    """Facility-level ablation: dynamically re-spreading finished jobs'
    power improves mean turnaround (the §1 premise, quantified)."""
    engage(benchmark)
    from repro.cluster import ClusterJob, JobPerformanceModel, simulate_cluster

    jobs = [
        ClusterJob("md", "comd", n_sockets=4, iterations=20, seed=1),
        ClusterJob("cfd", "bt", n_sockets=4, iterations=10, seed=2,
                   min_w_per_socket=28),
    ]
    pm = {j.name: JobPerformanceModel(j, "lp") for j in jobs}
    dyn = simulate_cluster(jobs, 330.0, performance_models=pm,
                           repartition=True)
    frozen = simulate_cluster(jobs, 330.0, performance_models=pm,
                              repartition=False)
    assert dyn.mean_turnaround_s() <= frozen.mean_turnaround_s() + 1e-9
