"""JobQueue: dedup by cell key, priority/FIFO order, quotas, durability."""

from __future__ import annotations

import json

import pytest

from repro.exec.keys import scenario_cell_key
from repro.scenarios.spec import SCENARIO_LAYER_VERSION, PolicySpec, ScenarioSpec
from repro.service import JobQueue, QuotaExceeded


def spec(caps=(40.0, 60.0), **overrides) -> ScenarioSpec:
    kwargs = dict(
        benchmark="synthetic",
        caps_per_socket_w=caps,
        policies=(PolicySpec("static"), PolicySpec("lp")),
        n_ranks=4,
        run_iterations=8,
        lp_iterations=2,
        discard_iterations=2,
        steady_window=4,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestSubmit:
    def test_one_job_per_cap_with_cell_keys(self, tmp_path):
        s = spec()
        queue = JobQueue(tmp_path)
        receipt = queue.submit_cells(s)
        assert receipt.submitted == 2
        assert receipt.deduped == 0 and receipt.requeued == 0
        expected = {
            scenario_cell_key(s.cell_hash(), cap, SCENARIO_LAYER_VERSION)
            for cap in (40.0, 60.0)
        }
        assert set(receipt.job_ids) == expected
        assert queue.depth() == 2

    def test_resubmission_dedups_against_pending(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit_cells(spec())
        receipt = queue.submit_cells(spec())
        assert receipt.submitted == 0 and receipt.deduped == 2
        assert queue.depth() == 2

    def test_duplicate_caps_within_one_submission_collapse(self, tmp_path):
        queue = JobQueue(tmp_path)
        receipt = queue.submit_cells(spec(caps=(40.0, 40.0, 60.0)))
        assert receipt.submitted == 2 and receipt.deduped == 1
        assert queue.depth() == 2

    def test_dedup_can_only_raise_priority(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit_cells(spec(), priority=5)
        queue.submit_cells(spec(), priority=1)
        assert all(j.priority == 5 for j in queue.jobs.values())
        queue.submit_cells(spec(), priority=9)
        assert all(j.priority == 9 for j in queue.jobs.values())

    def test_failed_jobs_requeue_on_resubmit(self, tmp_path):
        queue = JobQueue(tmp_path)
        receipt = queue.submit_cells(spec())
        job = queue.claim_next()
        queue.fail(job.job_id, {"error_type": "ValueError"})
        assert queue.jobs[job.job_id].failure == {"error_type": "ValueError"}
        again = queue.submit_cells(spec())
        assert again.requeued == 1 and again.deduped == 1
        assert queue.jobs[job.job_id].state == "pending"
        assert queue.jobs[job.job_id].failure is None
        assert set(again.job_ids) == set(receipt.job_ids)


class TestOrdering:
    def test_priority_then_fifo(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit_cells(spec(caps=(10.0, 20.0)), priority=0)
        queue.submit_cells(spec(caps=(30.0,)), priority=7)
        order = []
        while (job := queue.claim_next()) is not None:
            order.append((job.priority, job.cap_per_socket_w))
        assert order == [(7, 30.0), (0, 10.0), (0, 20.0)]

    def test_release_returns_a_claimed_job(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit_cells(spec(caps=(10.0,)))
        job = queue.claim_next()
        assert queue.depth() == 0
        queue.release(job.job_id)
        assert queue.depth() == 1


class TestSettleGuard:
    """Only the dispatcher holding a live claim may settle a job."""

    def test_release_then_complete_does_not_flip_state(self, tmp_path):
        # The race: a dispatcher releases a job (e.g. on timeout), a new
        # dispatcher reclaims it, then the stale dispatcher's complete()
        # arrives.  The job must stay with its current owner.
        queue = JobQueue(tmp_path)
        queue.submit_cells(spec(caps=(10.0,)))
        job = queue.claim_next()
        queue.release(job.job_id)
        queue.complete(job.job_id)  # stale settle: ignored
        assert queue.jobs[job.job_id].state == "pending"
        assert queue.depth() == 1
        # Nothing misleading reached the durable log either.
        assert JobQueue(tmp_path).jobs[job.job_id].state == "pending"

    def test_release_then_fail_keeps_job_and_failure_clean(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit_cells(spec(caps=(10.0,)))
        job = queue.claim_next()
        queue.release(job.job_id)
        queue.fail(job.job_id, {"error_type": "Stale"})
        assert queue.jobs[job.job_id].state == "pending"
        assert queue.jobs[job.job_id].failure is None

    def test_double_settle_keeps_first_outcome(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit_cells(spec(caps=(10.0,)))
        job = queue.claim_next()
        queue.complete(job.job_id)
        queue.fail(job.job_id, {"error_type": "Late"})
        assert queue.jobs[job.job_id].state == "done"
        assert queue.jobs[job.job_id].failure is None
        assert JobQueue(tmp_path).jobs[job.job_id].state == "done"

    def test_settling_a_pending_job_is_ignored(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit_cells(spec(caps=(10.0,)))
        job_id = next(iter(queue.jobs))
        queue.complete(job_id)  # never claimed
        assert queue.jobs[job_id].state == "pending"

    def test_unknown_job_still_raises(self, tmp_path):
        queue = JobQueue(tmp_path)
        with pytest.raises(KeyError, match="unknown job"):
            queue.complete("nope")

    def test_replay_ignores_stale_settle_events_in_old_logs(self, tmp_path):
        # Logs written before the guard may carry a settle for a job that
        # was no longer running; replay applies the same ownership rule.
        queue = JobQueue(tmp_path)
        queue.submit_cells(spec(caps=(10.0,)))
        job_id = next(iter(queue.jobs))
        with (tmp_path / "queue.jsonl").open("a") as fh:
            fh.write(json.dumps(
                {"schema": 1, "kind": "complete", "job_id": job_id}
            ) + "\n")
        assert JobQueue(tmp_path).jobs[job_id].state == "pending"


class TestQuota:
    def test_submission_rejected_whole(self, tmp_path):
        queue = JobQueue(tmp_path, quotas={"alice": 1})
        with pytest.raises(QuotaExceeded):
            queue.submit_cells(spec(), tenant="alice")
        # Atomic: nothing was enqueued, and the log stays empty.
        assert queue.depth() == 0
        assert not (tmp_path / "queue.jsonl").exists()

    def test_dedup_attachments_are_quota_free(self, tmp_path):
        queue = JobQueue(tmp_path, quotas={"bob": 2})
        queue.submit_cells(spec(), tenant="bob")
        # Same cells again: zero new active jobs, so no quota hit.
        receipt = queue.submit_cells(spec(), tenant="bob")
        assert receipt.deduped == 2

    def test_settled_jobs_free_quota(self, tmp_path):
        queue = JobQueue(tmp_path, quotas={"bob": 2})
        queue.submit_cells(spec(), tenant="bob")
        for _ in range(2):
            queue.complete(queue.claim_next().job_id)
        queue.submit_cells(spec(caps=(99.0,)), tenant="bob")


class TestDurability:
    def test_replay_reproduces_state(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit_cells(spec(caps=(10.0, 20.0, 30.0)), priority=3)
        queue.submit_cells(spec(caps=(10.0,)))  # one dedup
        done = queue.claim_next()
        queue.complete(done.job_id)
        failed = queue.claim_next()
        queue.fail(failed.job_id, {"error_type": "E"})

        replayed = JobQueue(tmp_path)
        assert {j.state for j in replayed.jobs.values()} == {
            "done", "failed", "pending"
        }
        assert replayed.deduped == 1
        assert replayed.jobs[done.job_id].state == "done"
        assert replayed.jobs[failed.job_id].failure == {"error_type": "E"}
        assert [j.seq for j in replayed.jobs.values()] == [0, 1, 2]

    def test_jobs_left_running_by_a_dead_dispatcher_release(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit_cells(spec(caps=(10.0,)))
        queue.claim_next()  # dispatcher "dies" here
        replayed = JobQueue(tmp_path)
        assert replayed.released_on_load == 1
        assert replayed.depth() == 1

    def test_torn_trailing_line_is_ignored(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit_cells(spec(caps=(10.0,)))
        with (tmp_path / "queue.jsonl").open("a") as fh:
            fh.write('{"schema": 1, "kind": "cla')
        assert JobQueue(tmp_path).depth() == 1

    def test_foreign_schema_events_are_skipped(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit_cells(spec(caps=(10.0,)))
        job_id = next(iter(queue.jobs))
        with (tmp_path / "queue.jsonl").open("a") as fh:
            fh.write(json.dumps(
                {"schema": 99, "kind": "complete", "job_id": job_id}
            ) + "\n")
        assert JobQueue(tmp_path).jobs[job_id].state == "pending"
