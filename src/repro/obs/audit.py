"""Solver audit ledger: one record per LP/MILP solve, plus cache traffic.

The LP bound is only as trustworthy as the solves behind it.  The audit
ledger records, for every :class:`~repro.core.solver.FrozenProgram`
solve, the model shape (rows, columns, nonzeros), the simplex iteration
count, termination status, objective, wall time, and *provenance* — a
cold first solve versus a parametric RHS re-solve versus a
content-addressed cache hit that skipped the solver entirely.

Activation mirrors :class:`~repro.exec.timing.Telemetry`: instrumented
code calls :func:`record_solve` / :func:`note_cache`, which are no-ops
unless a :class:`SolveAudit` is active in the current context via
:func:`use_audit`.  Parallel workers activate fresh ledgers and ship
:meth:`SolveAudit.to_dicts` back; the parent folds them in submission
order with :meth:`SolveAudit.extend`.

Stdlib-only: ``repro.core.solver`` imports this module, so it must not
import anything from ``repro`` or third-party packages.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

__all__ = [
    "SolveRecord",
    "SolveAudit",
    "current_audit",
    "use_audit",
    "record_solve",
    "note_cache",
]


@dataclass(frozen=True)
class SolveRecord:
    """Everything worth knowing about one solver invocation."""

    program: str
    backend: str  # "highs-direct" | "linprog" | "milp"
    source: str  # "cold" | "resolve"
    rows: int
    cols: int
    nnz: int
    iterations: int | None
    status: str
    objective: float | None
    wall_s: float

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "backend": self.backend,
            "source": self.source,
            "rows": self.rows,
            "cols": self.cols,
            "nnz": self.nnz,
            "iterations": self.iterations,
            "status": self.status,
            "objective": self.objective,
            "wall_s": self.wall_s,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SolveRecord":
        return cls(
            program=str(doc["program"]),
            backend=str(doc["backend"]),
            source=str(doc["source"]),
            rows=int(doc["rows"]),
            cols=int(doc["cols"]),
            nnz=int(doc["nnz"]),
            iterations=(
                int(doc["iterations"]) if doc.get("iterations") is not None else None
            ),
            status=str(doc["status"]),
            objective=(
                float(doc["objective"]) if doc.get("objective") is not None else None
            ),
            wall_s=float(doc["wall_s"]),
        )


class SolveAudit:
    """Ordered ledger of solve records plus cache hit/miss tallies."""

    def __init__(self) -> None:
        self.records: list[SolveRecord] = []
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    def record(self, record: SolveRecord) -> None:
        self.records.append(record)

    def note_cache(self, hit: bool) -> None:
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def __len__(self) -> int:
        return len(self.records)

    def total_wall_s(self) -> float:
        return sum(r.wall_s for r in self.records)

    # ------------------------------------------------------------------
    def to_dicts(self) -> dict:
        """JSON-safe snapshot (embedded in ``--timings-json`` payloads)."""
        return {
            "solves": [r.to_dict() for r in self.records],
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
        }

    def extend(self, snapshot: dict) -> None:
        """Fold a :meth:`to_dicts` snapshot (e.g. from a worker) in."""
        for doc in snapshot.get("solves", []):
            self.records.append(SolveRecord.from_dict(doc))
        cache = snapshot.get("cache", {})
        self.cache_hits += int(cache.get("hits", 0))
        self.cache_misses += int(cache.get("misses", 0))

    def table(self) -> str:
        """Human-readable audit table (the ``repro-exp audit`` output)."""
        lines = ["solver audit", "------------"]
        if not self.records:
            lines.append("(no solves recorded)")
        else:
            header = (
                f"{'program':<28} {'src':<7} {'backend':<12} "
                f"{'rows':>7} {'cols':>7} {'nnz':>9} {'iters':>6} "
                f"{'status':<10} {'objective':>12} {'wall':>9}"
            )
            lines.append(header)
            for r in self.records:
                iters = "-" if r.iterations is None else str(r.iterations)
                obj = "-" if r.objective is None else f"{r.objective:.6g}"
                lines.append(
                    f"{r.program:<28.28} {r.source:<7} {r.backend:<12} "
                    f"{r.rows:>7} {r.cols:>7} {r.nnz:>9} {iters:>6} "
                    f"{r.status:<10} {obj:>12} {r.wall_s:>8.3f}s"
                )
            lines.append(
                f"{len(self.records)} solve(s), "
                f"{self.total_wall_s():.3f}s in the solver"
            )
        lines.append(
            f"cache: {self.cache_hits} hit(s), {self.cache_misses} miss(es)"
        )
        return "\n".join(lines)


#: The active audit ledger (None = auditing disabled).
_current: ContextVar[SolveAudit | None] = ContextVar(
    "repro_solve_audit", default=None
)


def current_audit() -> SolveAudit | None:
    """The ledger active in this context, or None when auditing is off."""
    return _current.get()


@contextmanager
def use_audit(audit: SolveAudit):
    """Activate ``audit`` for the duration of the with-block."""
    token = _current.set(audit)
    try:
        yield audit
    finally:
        _current.reset(token)


def record_solve(record: SolveRecord) -> None:
    """Append to the active ledger (no-op when auditing is disabled)."""
    audit = _current.get()
    if audit is not None:
        audit.record(record)


def note_cache(hit: bool) -> None:
    """Tally a cache hit/miss on the active ledger (no-op when disabled)."""
    audit = _current.get()
    if audit is not None:
        audit.note_cache(hit)
