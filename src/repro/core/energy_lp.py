"""Energy-bounding LP — the related-work comparator (Rountree et al., SC'07).

The paper positions itself against prior LP work that *minimizes energy
subject to (near-)unchanged execution time* on fully power-provisioned
systems (§7: "the most related work to ours...").  This module implements
that formulation on the same trace substrate so the two objectives can be
compared directly:

* **This formulation**: minimize total energy, subject to
  ``makespan <= (1 + slowdown) * T_unconstrained`` — no power cap at all
  (it *requires a system with fully provisioned worst-case power*, which
  the paper points out future systems will not have).
* **The paper's LP**: minimize makespan subject to an instantaneous
  job-level power cap.

The contrast is the ablation `benchmarks/test_bench_ablations.py` runs:
energy-optimal schedules routinely *violate* realistic power caps, while
power-capped schedules burn more energy than the energy optimum — the
paper's argument for why power-constrained optimization is a genuinely
different problem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dag.graph import VertexKind
from ..machine.cpu import XEON_E5_2670
from ..machine.performance import TaskTimeModel
from ..dag.analysis import unconstrained_schedule
from ..simulator.trace import Trace
from .fixed_order_lp import _extract_schedule
from .schedule import PowerSchedule
from .solver import LinearProgram, LpSolution, LpStatus

__all__ = ["EnergyLpResult", "solve_energy_lp"]


@dataclass
class EnergyLpResult:
    """Energy-minimization outcome."""

    schedule: PowerSchedule | None
    solution: LpSolution
    energy_j: float | None
    time_budget_s: float

    @property
    def feasible(self) -> bool:
        return self.schedule is not None

    @property
    def makespan_s(self) -> float:
        if self.schedule is None:
            raise RuntimeError("energy LP infeasible")
        return self.schedule.objective_s


def solve_energy_lp(
    trace: Trace,
    slowdown: float = 0.0,
    time_limit_s: float | None = None,
) -> EnergyLpResult:
    """Minimize total task energy subject to a bounded slowdown.

    Parameters
    ----------
    slowdown:
        Allowed relative makespan increase over the power-unconstrained
        optimum (0.0 reproduces the "save energy without increasing
        execution time" setting; 0.05 allows 5%).
    """
    if slowdown < 0:
        raise ValueError(f"slowdown must be >= 0, got {slowdown}")
    graph = trace.graph
    tm = TaskTimeModel(XEON_E5_2670)
    t_best = unconstrained_schedule(graph, tm).makespan
    budget = (1.0 + slowdown) * t_best

    lp = LinearProgram(name=f"energy-{trace.app.name}")
    init_id = graph.find_vertex(VertexKind.INIT).id
    fin_id = graph.find_vertex(VertexKind.FINALIZE).id
    v_idx = [
        lp.add_var(f"v{v.id}", lb=0.0,
                   ub=0.0 if v.id == init_id else np.inf)
        for v in graph.vertices
    ]
    c_idx: dict[int, list[int]] = {}
    objective: dict[int, float] = {}
    for edge_id, frontier in trace.frontiers.items():
        cols = [lp.add_var(f"c{edge_id}_{j}", 0.0, 1.0)
                for j in range(len(frontier))]
        c_idx[edge_id] = cols
        lp.add_eq({col: 1.0 for col in cols}, 1.0, label=f"onehot{edge_id}")
        # Task energy is linear in the fractions: sum c_ij * (d_ij * p_ij).
        for col, point in zip(cols, frontier):
            objective[col] = point.duration_s * point.power_w

    for e in graph.edges:
        if e.is_compute:
            terms = {v_idx[e.dst]: 1.0, v_idx[e.src]: -1.0}
            for col, point in zip(c_idx[e.id], trace.frontiers[e.id]):
                terms[col] = terms.get(col, 0.0) - point.duration_s
            lp.add_ge(terms, 0.0, label=f"prec-task{e.id}")
        else:
            lp.add_ge({v_idx[e.dst]: 1.0, v_idx[e.src]: -1.0}, e.duration_s,
                      label=f"prec-msg{e.id}")

    # The performance guarantee replacing the paper's power constraint.
    lp.add_le({v_idx[fin_id]: 1.0}, budget, label="slowdown-budget")
    lp.set_objective(objective)

    solution = lp.solve(time_limit_s=time_limit_s)
    if solution.status is not LpStatus.OPTIMAL:
        return EnergyLpResult(schedule=None, solution=solution,
                              energy_j=None, time_budget_s=budget)
    # cap_w is a required positive field; the formulation is uncapped, so
    # record the budgetless marker of "fully provisioned" as +inf-like.
    schedule = _extract_schedule(
        trace, cap_w=float(np.finfo(float).max), solution=solution, lp=lp,
        v_idx=v_idx, c_idx=c_idx, fin_id=fin_id,
    )
    schedule.solver_info["formulation"] = "energy-lp"
    schedule.solver_info["time_budget_s"] = budget
    energy = sum(
        a.duration_s * a.power_w for a in schedule.assignments.values()
    )
    return EnergyLpResult(
        schedule=schedule, solution=solution, energy_j=float(energy),
        time_budget_s=budget,
    )
