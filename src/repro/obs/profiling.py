"""Per-cell cProfile aggregation: where do sweep CPU seconds really go?

``--timings`` says which *phases* are hot; a profile says which
*functions* are.  This module runs :mod:`cProfile` around each sweep
cell and aggregates the per-cell (and per-worker) statistics into one
fleet-wide view:

* :func:`profile_block` — a contextmanager that profiles its block into
  the active :class:`ProfileCollector` (a no-op, beyond one contextvar
  read, when none is active), used by the scenario executor around each
  cell computation;
* :class:`ProfileCollector` — accumulates per-function
  ``(calls, total, cumulative)`` seconds keyed by
  ``file:line(function)``; snapshots are plain JSON-safe dicts, so
  workers ship them back with their results and the parent merges them
  exactly like telemetry;
* :meth:`ProfileCollector.table` — the run artifact: a top-N table
  sorted by cumulative seconds, the classic ``pstats`` view aggregated
  across every cell of the sweep.

Profiles are wall/CPU measurements — operational data in the sense of
:mod:`repro.obs.metrics` — so they are written as standalone artifacts
(``--profile FILE``) and never embedded in anything byte-deterministic.

Stdlib-only, like every ``repro.obs`` module.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "ProfileCollector",
    "current_profile",
    "use_profile",
    "profile_block",
]

#: Version of the :meth:`ProfileCollector.to_dict` snapshot layout.
PROFILE_SCHEMA_VERSION = 1


def _func_key(func: tuple) -> str:
    """A ``pstats`` function triple as one stable string key."""
    filename, lineno, name = func
    return f"{filename}:{lineno}({name})"


class ProfileCollector:
    """Aggregated per-function profile statistics across profiled blocks.

    ``stats`` maps ``file:line(function)`` to ``[ncalls, tottime_s,
    cumtime_s]``; ``blocks`` counts how many profiled blocks (sweep
    cells) contributed.  Merging is plain addition, so the aggregate
    over N workers equals the aggregate of one worker doing all N
    shares of the work.
    """

    def __init__(self) -> None:
        self.stats: dict[str, list] = {}
        self.blocks = 0

    # ------------------------------------------------------------------
    def add_profile(self, profile: cProfile.Profile) -> None:
        """Fold one finished :class:`cProfile.Profile` in."""
        st = pstats.Stats(profile)
        self.blocks += 1
        for func, (cc, nc, tt, ct, _callers) in st.stats.items():
            key = _func_key(func)
            entry = self.stats.setdefault(key, [0, 0.0, 0.0])
            entry[0] += nc
            entry[1] += tt
            entry[2] += ct

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe snapshot (what workers ship back)."""
        return {
            "version": PROFILE_SCHEMA_VERSION,
            "blocks": self.blocks,
            "stats": {
                key: [calls, tottime, cumtime]
                for key, (calls, tottime, cumtime) in sorted(self.stats.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`to_dict` snapshot (e.g. from a worker) in.

        Raises :class:`ValueError` on a missing or mismatched schema
        ``version`` — profiles from a different layout must not be
        silently summed.
        """
        version = snapshot.get("version")
        if version != PROFILE_SCHEMA_VERSION:
            raise ValueError(
                f"profile snapshot version {version!r} does not match "
                f"schema version {PROFILE_SCHEMA_VERSION}"
            )
        self.blocks += int(snapshot.get("blocks", 0))
        for key, (calls, tottime, cumtime) in snapshot.get("stats", {}).items():
            entry = self.stats.setdefault(key, [0, 0.0, 0.0])
            entry[0] += int(calls)
            entry[1] += float(tottime)
            entry[2] += float(cumtime)

    # ------------------------------------------------------------------
    def top(self, n: int = 25) -> list[tuple[str, int, float, float]]:
        """The ``n`` hottest functions by cumulative seconds.

        Ties break by the function key, so the ordering — and the table
        built from it — is stable for identical profile data.
        """
        rows = [
            (key, calls, tottime, cumtime)
            for key, (calls, tottime, cumtime) in self.stats.items()
        ]
        rows.sort(key=lambda r: (-r[3], r[0]))
        return rows[:n]

    def table(self, n: int = 25) -> str:
        """The aggregated top-N cumulative-time table (the run artifact)."""
        lines = [
            f"aggregated profile: {self.blocks} profiled cell(s), "
            f"{len(self.stats)} function(s)",
            f"{'ncalls':>10} {'tottime':>10} {'cumtime':>10}  function",
        ]
        if not self.stats:
            lines.append("(no profile data recorded)")
            return "\n".join(lines)
        for key, calls, tottime, cumtime in self.top(n):
            lines.append(
                f"{calls:>10} {tottime:>10.4f} {cumtime:>10.4f}  {key}"
            )
        return "\n".join(lines)


#: The active profile collector (None = profiling disabled).
_current: ContextVar[ProfileCollector | None] = ContextVar(
    "repro_profile_collector", default=None
)


def current_profile() -> ProfileCollector | None:
    """The collector active in this context, or None when profiling is off."""
    return _current.get()


@contextmanager
def use_profile(collector: ProfileCollector):
    """Activate ``collector`` for the duration of the with-block."""
    token = _current.set(collector)
    try:
        yield collector
    finally:
        _current.reset(token)


@contextmanager
def profile_block():
    """Run the block under cProfile into the active collector.

    A no-op when no collector is active — the sweep executor wraps every
    cell in this, and pays nothing unless ``--profile`` turned the
    collector on.  Each block gets its own :class:`cProfile.Profile`
    (profilers must not nest), folded in when the block exits.
    """
    collector = _current.get()
    if collector is None:
        yield
        return
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield
    finally:
        profile.disable()
        collector.add_profile(profile)
