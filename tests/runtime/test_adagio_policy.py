"""Tests for standalone Adagio (uncapped energy-saving runtime)."""

import pytest

from repro.machine import sample_socket_efficiencies, SocketPowerModel
from repro.runtime import AdagioPolicy
from repro.simulator import Engine, MaxPerformancePolicy
from repro.workloads import imbalanced_collective_app


@pytest.fixture
def models():
    eff = sample_socket_efficiencies(4, seed=9)
    return [SocketPowerModel(efficiency=float(e)) for e in eff]


@pytest.fixture
def app():
    return imbalanced_collective_app(n_ranks=4, iterations=10, spread=1.5)


class TestAdagioPolicy:
    def test_validation(self, models, app):
        with pytest.raises(ValueError):
            AdagioPolicy(models, app, safety=1.5)

    def test_saves_energy_with_negligible_slowdown(self, models, app):
        """The related-work premise: non-critical ranks slow into slack,
        cutting energy while the (critical-path) makespan barely moves."""
        engine = Engine(models)
        base = engine.run(app, MaxPerformancePolicy())
        adagio = engine.run(app, AdagioPolicy(models, app))
        assert adagio.total_energy_j() < base.total_energy_j() * 0.99
        assert adagio.makespan_s <= base.makespan_s * 1.02

    def test_critical_rank_stays_fast(self, models, app):
        """The heaviest rank (zero slack) keeps near-fastest configs."""
        engine = Engine(models)
        res = engine.run(app, AdagioPolicy(models, app))
        import numpy as np

        busy = np.zeros(4)
        for r in res.records:
            busy[r.ref.rank] += r.duration_s
        heavy = int(np.argmax(busy))
        late = [
            r for r in res.records
            if r.ref.rank == heavy and r.iteration >= 5
        ]
        assert all(r.config.freq_ghz >= 2.4 for r in late)

    def test_light_ranks_downshift(self, models, app):
        engine = Engine(models)
        res = engine.run(app, AdagioPolicy(models, app))
        import numpy as np

        busy = np.zeros(4)
        for r in res.records:
            busy[r.ref.rank] += r.duration_s
        light = int(np.argmin(busy))
        late = [
            r for r in res.records
            if r.ref.rank == light and r.iteration >= 5
        ]
        assert any(r.config.freq_ghz < 2.6 for r in late)

    def test_first_iteration_runs_fastest(self, models, app, kernel):
        """No slack estimates yet: everything at the fastest config."""
        policy = AdagioPolicy(models, app)
        from repro.simulator import TaskRef

        cfg = policy.configure(TaskRef(0, 0), kernel, 0, None)
        assert cfg.freq_ghz == 2.6


class TestEnergyComparisonExhibit:
    def test_orderings(self):
        from repro.experiments import energy_comparison

        result = energy_comparison(n_ranks=4, iterations=6)
        t_max, e_max = result.row("MaxPerformance")[1:]
        t_ada, e_ada = result.row("Adagio")[1:]
        t_lp, e_lp = result.row("Energy LP (0% slowdown)")[1:]
        # Adagio saves energy vs MaxPerformance at ~no slowdown; the
        # energy LP bounds what any such runtime can save.
        assert e_ada < e_max
        assert e_lp <= e_ada * 1.001
        assert t_ada <= t_max * 1.02
        assert t_lp <= t_max * 1.001

    def test_render(self):
        from repro.experiments import energy_comparison

        text = energy_comparison(n_ranks=4, iterations=4).render()
        assert "Energy vs power objectives" in text
