"""Sensitivity analysis: how model constants move the headline numbers.

The reproduction's absolute percentages depend on calibration constants the
paper does not publish (dynamic-power exponent, manufacturing-variability
spread).  This exhibit quantifies that dependence for the headline metric —
BT's LP-vs-Static improvement at 30 W/socket — so readers can judge which
conclusions are robust (the *sign and ordering* of the effects) and which
are calibration-sensitive (the exact percentages).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.fixed_order_lp import solve_fixed_order_lp
from ..machine.cpu import XEON_E5_2670
from ..machine.power import PowerModelParams, SocketPowerModel
from ..machine.variability import sample_socket_efficiencies
from ..runtime.static import StaticPolicy
from ..simulator.engine import Engine
from ..simulator.trace import trace_application
from ..workloads import WorkloadSpec, make_bt
from .report import render_table

__all__ = ["SensitivityResult", "sensitivity_analysis"]


@dataclass
class SensitivityResult:
    """LP-vs-Static headline under varied model constants."""

    rows: list[tuple[str, str, float]]  # (parameter, value, improvement %)
    baseline_pct: float
    n_ranks: int
    cap_per_socket_w: float

    def values_for(self, parameter: str) -> list[float]:
        return [pct for p, _, pct in self.rows if p == parameter]

    def render(self) -> str:
        table = render_table(
            ["parameter", "value", "BT LP vs Static @ "
             f"{self.cap_per_socket_w:.0f} W (%)"],
            [list(r) for r in self.rows],
            title=(
                "Sensitivity of the headline to model constants "
                f"({self.n_ranks} ranks; baseline "
                f"{self.baseline_pct:.1f}%)"
            ),
            digits=1,
        )
        return table


def _headline(
    n_ranks: int,
    cap_per_socket_w: float,
    params: PowerModelParams,
    variability_sigma: float,
    seed: int = 2015,
    efficiency_seed: int = 42,
) -> float:
    eff = sample_socket_efficiencies(
        n_ranks, sigma=variability_sigma, seed=efficiency_seed
    )
    models = [
        SocketPowerModel(spec=XEON_E5_2670, params=params, efficiency=float(e))
        for e in eff
    ]
    app_run = make_bt(WorkloadSpec(n_ranks=n_ranks, iterations=8, seed=seed))
    app_lp = make_bt(WorkloadSpec(n_ranks=n_ranks, iterations=3, seed=seed))
    job_cap = cap_per_socket_w * n_ranks

    res_static = Engine(models).run(app_run, StaticPolicy(models, job_cap))
    t_static = res_static.makespan_after_warmup(2) / 6

    trace = trace_application(app_lp, models)
    lp = solve_fixed_order_lp(trace, job_cap)
    if not lp.feasible:
        return float("nan")
    t_lp = lp.makespan_s / 3
    return (t_static / t_lp - 1.0) * 100.0


def sensitivity_analysis(
    n_ranks: int = 8,
    cap_per_socket_w: float = 30.0,
    exponents: tuple[float, ...] = (2.0, 2.4, 2.8),
    sigmas: tuple[float, ...] = (0.0, 0.04, 0.08),
) -> SensitivityResult:
    """Sweep the dynamic-power exponent and the variability spread."""
    base_params = PowerModelParams()
    baseline = _headline(n_ranks, cap_per_socket_w, base_params, 0.04)
    rows: list[tuple[str, str, float]] = []
    for gamma in exponents:
        params = PowerModelParams(freq_exponent=gamma)
        rows.append(
            ("freq_exponent", f"{gamma:.1f}",
             _headline(n_ranks, cap_per_socket_w, params, 0.04))
        )
    for sigma in sigmas:
        rows.append(
            ("variability_sigma", f"{sigma:.2f}",
             _headline(n_ranks, cap_per_socket_w, base_params, sigma))
        )
    return SensitivityResult(
        rows=rows, baseline_pct=baseline, n_ranks=n_ranks,
        cap_per_socket_w=cap_per_socket_w,
    )
