"""Unit tests for the Static baseline."""

import pytest

from repro.machine import SocketPowerModel, XEON_E5_2670
from repro.runtime import StaticPolicy
from repro.simulator import Engine, TaskRef, job_power_timeline

from ..conftest import make_p2p_app


class TestStaticPolicy:
    def test_uniform_split(self, two_rank_models):
        policy = StaticPolicy(two_rank_models, job_cap_w=100.0)
        assert policy.cap_per_socket_w == pytest.approx(50.0)

    def test_invalid_cap(self, two_rank_models):
        with pytest.raises(ValueError):
            StaticPolicy(two_rank_models, job_cap_w=0.0)

    def test_invalid_threads(self, two_rank_models):
        with pytest.raises(ValueError):
            StaticPolicy(two_rank_models, 100.0, threads=99)

    def test_full_concurrency_default(self, two_rank_models, kernel):
        policy = StaticPolicy(two_rank_models, 100.0)
        cfg = policy.configure(TaskRef(0, 0), kernel, 0, None)
        assert cfg.threads == XEON_E5_2670.cores

    def test_no_software_overheads(self, two_rank_models):
        policy = StaticPolicy(two_rank_models, 100.0)
        assert policy.switch_cost_s() == 0.0
        assert policy.on_pcontrol(0, []) == 0.0

    def test_leaky_socket_gets_lower_frequency(self, kernel):
        models = [SocketPowerModel(efficiency=0.95),
                  SocketPowerModel(efficiency=1.12)]
        policy = StaticPolicy(models, 60.0)
        f0 = policy.configure(TaskRef(0, 0), kernel, 0, None).effective_freq_ghz
        f1 = policy.configure(TaskRef(1, 0), kernel, 0, None).effective_freq_ghz
        assert f1 < f0

    def test_generous_cap_runs_fmax(self, two_rank_models, kernel):
        policy = StaticPolicy(two_rank_models, 400.0)
        cfg = policy.configure(TaskRef(0, 0), kernel, 0, None)
        assert cfg.freq_ghz == XEON_E5_2670.fmax_ghz


class TestStaticEndToEnd:
    def test_job_cap_respected(self, two_rank_models, kernel):
        app = make_p2p_app(kernel, iterations=2)
        job_cap = 70.0
        res = Engine(two_rank_models).run(
            app, StaticPolicy(two_rank_models, job_cap)
        )
        tl = job_power_timeline(res, two_rank_models, slack_mode="idle")
        assert tl.max_power() <= job_cap * 1.001

    def test_lower_cap_is_slower(self, two_rank_models, kernel):
        app = make_p2p_app(kernel, iterations=2)
        engine = Engine(two_rank_models)
        t_low = engine.run(app, StaticPolicy(two_rank_models, 50.0)).makespan_s
        t_high = engine.run(app, StaticPolicy(two_rank_models, 110.0)).makespan_s
        assert t_low > t_high
