"""Tests for the repro-experiments CLI."""

import pytest

from repro.experiments.cli import EXHIBITS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXHIBITS:
            assert name in out

    def test_unknown_exhibit(self):
        with pytest.raises(SystemExit):
            main(["not-a-figure"])

    def test_fig1_runs(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "regenerated" in out

    def test_overheads_runs(self, capsys):
        assert main(["overheads"]) == 0
        assert "566" in capsys.readouterr().out

    def test_quick_flag_shrinks_ranks(self, capsys):
        # fig12 with --quick runs 8 ranks x 4 iterations: fast.
        assert main(["--quick", "fig12"]) == 0
        assert "Figure 12" in capsys.readouterr().out

    def test_save_writes_files(self, capsys, tmp_path):
        assert main(["--save", str(tmp_path), "fig1", "overheads"]) == 0
        capsys.readouterr()
        assert (tmp_path / "fig1.txt").read_text().startswith("Figure 1")
        assert "566" in (tmp_path / "overheads.txt").read_text()
