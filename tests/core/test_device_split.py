"""Static device-split caps: the EcoShift-style baseline vs the LP."""

import pytest

from repro.core.device_split import (
    SPLIT_ROW_TAG,
    best_static_split,
    compile_device_split,
    solve_device_split_lp,
)
from repro.core.fixed_order_lp import solve_fixed_order_lp
from repro.core.model import build_problem_instance
from repro.machine.device import device_power_groups, get_node, rank_nodes
from repro.machine.frontiers import NodeFrontierStore
from repro.machine.variability import make_power_models
from repro.simulator.trace import trace_application
from repro.workloads.synthetic import phased_offload_app

N_RANKS = 2
CAP_W = 120.0  # 60 W/socket


@pytest.fixture(scope="module")
def het_instance():
    app = phased_offload_app(n_ranks=N_RANKS, iterations=2)
    pm = make_power_models(N_RANKS, efficiency_seed=42)
    nodes = rank_nodes(get_node("cpu-gpu"), pm)
    store = NodeFrontierStore(nodes)
    trace = trace_application(app, pm, frontier_store=store)
    return build_problem_instance(trace), device_power_groups(nodes[0])


class TestCompileDeviceSplit:
    def test_shares_must_sum_to_one(self, het_instance):
        instance, groups = het_instance
        with pytest.raises(ValueError, match="sum to 1"):
            compile_device_split(instance, CAP_W, {"cpu": 0.6, "offload": 0.6},
                                 groups)

    def test_shares_must_be_nonnegative(self, het_instance):
        instance, groups = het_instance
        with pytest.raises(ValueError, match=">= 0"):
            compile_device_split(
                instance, CAP_W, {"cpu": 1.5, "offload": -0.5}, groups
            )

    def test_device_in_two_groups_rejected(self, het_instance):
        instance, _ = het_instance
        with pytest.raises(ValueError, match="two groups"):
            compile_device_split(
                instance, CAP_W, {"cpu": 0.5, "offload": 0.5},
                {"cpu": ("cpu0",), "offload": ("cpu0", "gpu0")},
            )

    def test_split_rows_are_tagged(self, het_instance):
        instance, groups = het_instance
        compiled = compile_device_split(
            instance, CAP_W, {"cpu": 0.5, "offload": 0.5}, groups
        )
        tags = set(compiled.lp.freeze().tags)
        assert f"{SPLIT_ROW_TAG}:cpu" in tags
        assert f"{SPLIT_ROW_TAG}:offload" in tags

    def test_unmapped_device_is_an_error(self, het_instance):
        instance, _ = het_instance
        with pytest.raises(ValueError, match="belongs to no group"):
            compile_device_split(
                instance, CAP_W, {"cpu": 0.5, "offload": 0.5},
                {"cpu": ("cpu0",), "offload": ()},
            )


class TestSplitVsAggregate:
    def test_every_split_is_a_restriction_of_the_lp(self, het_instance):
        """Split feasible region ⊂ LP feasible region ⇒ never faster."""
        instance, groups = het_instance
        lp = solve_fixed_order_lp(instance.trace, CAP_W, instance=instance)
        assert lp.feasible
        for share in (0.3, 0.5, 0.7):
            split = solve_device_split_lp(
                instance, CAP_W, {"cpu": share, "offload": 1.0 - share}, groups
            )
            if split.feasible:
                assert split.makespan_s >= lp.makespan_s - 1e-9

    def test_lp_strictly_beats_best_split_on_phased_workload(self, het_instance):
        """The headline claim: dynamic cross-device shifting has value."""
        instance, groups = het_instance
        lp = solve_fixed_order_lp(instance.trace, CAP_W, instance=instance)
        result = best_static_split(instance, CAP_W, groups)
        assert result.feasible
        assert lp.makespan_s < result.makespan_s * (1 - 1e-6)

    def test_best_split_scans_all_shares(self, het_instance):
        instance, groups = het_instance
        shares = (0.4, 0.6)
        result = best_static_split(instance, CAP_W, groups, cpu_shares=shares)
        assert set(result.per_share) == set(shares)
        achieved = [t for t in result.per_share.values() if t is not None]
        assert result.makespan_s == min(achieved)
        assert result.per_share[result.best_share] == result.makespan_s

    def test_groups_shape_is_enforced(self, het_instance):
        instance, _ = het_instance
        with pytest.raises(ValueError, match="cpu/offload"):
            best_static_split(instance, CAP_W, {"cpu": ("cpu0",)})

    def test_all_infeasible_scan_reports_unfeasible(self, het_instance):
        instance, groups = het_instance
        # 1 W starves every device; every split is infeasible.
        result = best_static_split(instance, 1.0, groups)
        assert not result.feasible
        assert result.best_share is None
        assert all(t is None for t in result.per_share.values())
        with pytest.raises(ValueError, match="no feasible"):
            _ = result.makespan_s


class TestLegacyGroupMapping:
    def test_legacy_empty_device_counts_as_cpu(self):
        """A homogeneous trace splits cleanly: "" maps to the cpu group."""
        app = phased_offload_app(n_ranks=N_RANKS, iterations=2)
        pm = make_power_models(N_RANKS, efficiency_seed=42)
        instance = build_problem_instance(trace_application(app, pm))
        compiled = compile_device_split(
            instance, CAP_W, {"cpu": 1.0, "offload": 0.0},
            {"cpu": (), "offload": ()},
        )
        tags = set(compiled.lp.freeze().tags)
        assert f"{SPLIT_ROW_TAG}:cpu" in tags
        # All power on the cpu side: same optimum as the plain LP.
        split = compiled.lp.solve()
        plain = solve_fixed_order_lp(instance.trace, CAP_W, instance=instance)
        assert split.objective == pytest.approx(plain.makespan_s, rel=1e-6)
