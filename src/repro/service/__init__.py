"""The scenario service: a persistent job queue drained by a worker fleet.

:func:`~repro.scenarios.run.run_scenarios` is a *session*: one process
owns one sweep from submission to result.  The service layer turns the
same cells into *jobs* that outlive any process:

* :class:`~repro.service.queue.JobQueue` — an append-only, fsynced
  event log of submitted cells, deduplicated by the exec layer's
  content address (:func:`~repro.exec.keys.scenario_cell_key`, the same
  key the solver cache and sweep journal use), ordered by priority then
  submission, and bounded per tenant by active-job quotas;
* :class:`~repro.service.dispatcher.FleetDispatcher` — drains the queue
  onto any :class:`~repro.exec.backends.base.ExecBackend` (the classic
  per-map process pool, a spawned socket worker fleet, or in-process),
  journaling every settled cell exactly as ``run_scenarios`` would, so
  results computed by the service resume byte-identically in the CLI;
* :mod:`~repro.service.status` — the schema-versioned status document
  behind ``repro-exp status --json``, with a validator mirroring
  :func:`~repro.obs.metrics.validate_metrics_doc`;
* :mod:`~repro.service.worker` — the entry point a fleet worker process
  runs (``repro-exp worker --connect ...``).

The package sits *above* ``repro.scenarios`` (it submits and runs
scenario cells) and below nothing: no repro module may import it except
the CLI.  See ``docs/execution.md`` ("Running as a service").
"""

from .dispatcher import FleetDispatcher
from .queue import (
    QUEUE_SCHEMA_VERSION,
    Job,
    JobQueue,
    QuotaExceeded,
    SubmitReceipt,
)
from .status import (
    STATUS_SCHEMA_VERSION,
    build_status_doc,
    render_status_text,
    validate_status_doc,
)
from .worker import run_worker

__all__ = [
    "FleetDispatcher",
    "Job",
    "JobQueue",
    "QUEUE_SCHEMA_VERSION",
    "QuotaExceeded",
    "STATUS_SCHEMA_VERSION",
    "SubmitReceipt",
    "build_status_doc",
    "render_status_text",
    "run_worker",
    "validate_status_doc",
]
