"""Unit tests for ASCII Gantt rendering."""

import pytest

from repro.core import solve_fixed_order_lp
from repro.experiments import gantt_from_result, gantt_from_schedule
from repro.machine import SocketPowerModel, TaskKernel
from repro.simulator import Engine, MaxPerformancePolicy, trace_application

from ..conftest import make_p2p_app


@pytest.fixture(scope="module")
def setup():
    kernel = TaskKernel(cpu_seconds=1.0, mem_seconds=0.2,
                        parallel_fraction=0.98, mem_parallel_fraction=0.9,
                        bw_saturation_threads=4, mem_intensity=0.3)
    models = [SocketPowerModel(), SocketPowerModel(efficiency=1.05)]
    app = make_p2p_app(kernel, iterations=1)
    return app, models


class TestGanttFromResult:
    def test_one_row_per_rank(self, setup):
        app, models = setup
        res = Engine(models).run(app, MaxPerformancePolicy())
        text = gantt_from_result(res, width=40)
        rows = text.splitlines()
        assert rows[0].startswith("    r0")
        assert rows[1].startswith("    r1")
        assert "glyphs" in rows[-1]

    def test_glyphs_encode_threads(self, setup):
        app, models = setup
        res = Engine(models).run(app, MaxPerformancePolicy())
        text = gantt_from_result(res, width=40)
        assert "8" in text  # compute-bound kernel runs 8 threads

    def test_width_respected(self, setup):
        app, models = setup
        res = Engine(models).run(app, MaxPerformancePolicy())
        text = gantt_from_result(res, width=30)
        bar = text.splitlines()[0].split("|")[1]
        assert len(bar) == 30


class TestGanttFromSchedule:
    def test_renders_lp_schedule(self, setup):
        app, models = setup
        trace = trace_application(app, models)
        lp = solve_fixed_order_lp(trace, 55.0)
        text = gantt_from_schedule(trace, lp.schedule, width=48)
        assert text.count("|") >= 4  # two framed rank rows
        assert f"{lp.schedule.objective_s:8.3f}" in text

    def test_idle_shown_as_dots(self, setup):
        app, models = setup
        trace = trace_application(app, models)
        lp = solve_fixed_order_lp(trace, 300.0)
        text = gantt_from_schedule(trace, lp.schedule, width=48)
        assert "." in text.splitlines()[0] or "." in text.splitlines()[1]


class TestPowerProfileAscii:
    def test_renders_with_cap_line(self, setup):
        from repro.experiments import power_profile_ascii
        from repro.runtime import StaticPolicy
        from repro.simulator import job_power_timeline

        app, models = setup
        res = Engine(models).run(app, StaticPolicy(models, 70.0))
        tl = job_power_timeline(res, models)
        text = power_profile_ascii(tl, cap_w=70.0, width=50, height=10)
        assert "#" in text
        assert "=" in text  # the cap line
        assert "70 W job cap" in text
        assert len(text.splitlines()) == 12  # 10 rows + axis + legend

    def test_empty_timeline_rejected(self):
        import numpy as np

        from repro.experiments import power_profile_ascii
        from repro.simulator import PowerTimeline

        empty = PowerTimeline(times=np.array([0.0]), power=np.array([]))
        import pytest as _pytest

        with _pytest.raises(ValueError):
            power_profile_ascii(empty)

    def test_peak_reaches_top_rows(self, setup):
        from repro.experiments import power_profile_ascii
        from repro.simulator import job_power_timeline

        app, models = setup
        res = Engine(models).run(app, MaxPerformancePolicy())
        tl = job_power_timeline(res, models)
        text = power_profile_ascii(tl, width=40, height=8)
        # The busiest instant fills to within ~2 rows of the chart top.
        first_filled = next(
            i for i, line in enumerate(text.splitlines()) if "#" in line
        )
        assert first_filled <= 2
