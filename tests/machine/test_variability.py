"""Unit tests for socket manufacturing variability."""

import numpy as np
import pytest

from repro.machine import sample_socket_efficiencies


class TestSampling:
    def test_deterministic_with_seed(self):
        a = sample_socket_efficiencies(32, seed=5)
        b = sample_socket_efficiencies(32, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = sample_socket_efficiencies(32, seed=5)
        b = sample_socket_efficiencies(32, seed=6)
        assert not np.array_equal(a, b)

    def test_bounds(self):
        e = sample_socket_efficiencies(1000, sigma=0.2, seed=0)
        assert e.min() >= 0.85
        assert e.max() <= 1.20

    def test_centered_near_one(self):
        e = sample_socket_efficiencies(2000, sigma=0.04, seed=1)
        assert abs(e.mean() - 1.0) < 0.01

    def test_zero_sigma_is_uniform(self):
        e = sample_socket_efficiencies(8, sigma=0.0, seed=0)
        np.testing.assert_allclose(e, 1.0)

    def test_spread_grows_with_sigma(self):
        tight = sample_socket_efficiencies(500, sigma=0.01, seed=2)
        wide = sample_socket_efficiencies(500, sigma=0.08, seed=2)
        assert wide.std() > tight.std()

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_socket_efficiencies(0)
        with pytest.raises(ValueError):
            sample_socket_efficiencies(4, sigma=-0.1)

    def test_count(self):
        assert len(sample_socket_efficiencies(7)) == 7
