"""Dependency-free SVG charts: render the paper's figures as images.

The offline environment has no plotting stack, so this module writes SVG
directly — scatter plots (Figures 1 and 12), line charts (Figure 8), and
grouped bar charts (Figures 9-15) with axes, ticks, and legends.  Output
is deterministic, diffable XML; tests parse it back with
``xml.etree.ElementTree``.

Only the primitives needed by the paper's figures are implemented; this is
a figure writer, not a plotting library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from xml.sax.saxutils import escape

__all__ = ["SvgFigure", "svg_scatter", "svg_line_chart", "svg_bar_chart"]

#: Categorical palette (colorblind-safe Okabe-Ito subset).
PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9")

_MARKERS = ("circle", "square", "diamond", "triangle")


@dataclass
class SvgFigure:
    """An SVG document under construction (plot area + margins)."""

    width: int = 640
    height: int = 420
    margin_left: int = 64
    margin_right: int = 150
    margin_top: int = 46
    margin_bottom: int = 52
    elements: list[str] = field(default_factory=list)

    @property
    def plot_w(self) -> float:
        return self.width - self.margin_left - self.margin_right

    @property
    def plot_h(self) -> float:
        return self.height - self.margin_top - self.margin_bottom

    # ------------------------------------------------------------------
    def add(self, element: str) -> None:
        self.elements.append(element)

    def title(self, text: str) -> None:
        self.add(
            f'<text x="{self.width / 2:.1f}" y="22" text-anchor="middle" '
            f'font-size="15" font-weight="bold">{escape(text)}</text>'
        )

    def axes(self, xlabel: str, ylabel: str) -> None:
        x0, y0 = self.margin_left, self.margin_top
        x1, y1 = x0 + self.plot_w, y0 + self.plot_h
        self.add(
            f'<rect x="{x0}" y="{y0}" width="{self.plot_w:.1f}" '
            f'height="{self.plot_h:.1f}" fill="none" stroke="#333"/>'
        )
        self.add(
            f'<text x="{(x0 + x1) / 2:.1f}" y="{self.height - 10}" '
            f'text-anchor="middle" font-size="12">{escape(xlabel)}</text>'
        )
        self.add(
            f'<text x="16" y="{(y0 + y1) / 2:.1f}" text-anchor="middle" '
            f'font-size="12" transform="rotate(-90 16 {(y0 + y1) / 2:.1f})">'
            f"{escape(ylabel)}</text>"
        )

    def x_tick(self, px: float, label: str) -> None:
        y1 = self.margin_top + self.plot_h
        self.add(f'<line x1="{px:.1f}" y1="{y1:.1f}" x2="{px:.1f}" '
                 f'y2="{y1 + 5:.1f}" stroke="#333"/>')
        self.add(
            f'<text x="{px:.1f}" y="{y1 + 18:.1f}" text-anchor="middle" '
            f'font-size="11">{escape(label)}</text>'
        )

    def y_tick(self, py: float, label: str) -> None:
        x0 = self.margin_left
        self.add(f'<line x1="{x0 - 5}" y1="{py:.1f}" x2="{x0}" '
                 f'y2="{py:.1f}" stroke="#333"/>')
        self.add(
            f'<text x="{x0 - 8}" y="{py + 4:.1f}" text-anchor="end" '
            f'font-size="11">{escape(label)}</text>'
        )
        self.add(
            f'<line x1="{x0}" y1="{py:.1f}" x2="{x0 + self.plot_w:.1f}" '
            f'y2="{py:.1f}" stroke="#ddd" stroke-dasharray="3,3"/>'
        )

    def legend(self, names: list[str]) -> None:
        x = self.margin_left + self.plot_w + 12
        for i, name in enumerate(names):
            y = self.margin_top + 14 + 20 * i
            color = PALETTE[i % len(PALETTE)]
            self.add(f'<rect x="{x}" y="{y - 9}" width="12" height="12" '
                     f'fill="{color}"/>')
            self.add(
                f'<text x="{x + 18}" y="{y + 2}" font-size="12">'
                f"{escape(name)}</text>"
            )

    def marker(self, px: float, py: float, color: str, kind: str = "circle",
               size: float = 3.5) -> None:
        if kind == "circle":
            self.add(f'<circle cx="{px:.1f}" cy="{py:.1f}" r="{size:.1f}" '
                     f'fill="{color}" fill-opacity="0.75"/>')
        elif kind == "square":
            self.add(
                f'<rect x="{px - size:.1f}" y="{py - size:.1f}" '
                f'width="{2 * size:.1f}" height="{2 * size:.1f}" '
                f'fill="{color}" fill-opacity="0.75"/>'
            )
        elif kind == "diamond":
            self.add(
                f'<path d="M {px:.1f} {py - size:.1f} L {px + size:.1f} '
                f'{py:.1f} L {px:.1f} {py + size:.1f} L {px - size:.1f} '
                f'{py:.1f} Z" fill="{color}" fill-opacity="0.75"/>'
            )
        else:  # triangle
            self.add(
                f'<path d="M {px:.1f} {py - size:.1f} L {px + size:.1f} '
                f'{py + size:.1f} L {px - size:.1f} {py + size:.1f} Z" '
                f'fill="{color}" fill-opacity="0.75"/>'
            )

    def render(self) -> str:
        body = "\n".join(self.elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} '
            f'{self.height}" font-family="Helvetica, Arial, sans-serif">\n'
            f'<rect width="{self.width}" height="{self.height}" '
            f'fill="white"/>\n{body}\n</svg>\n'
        )


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / n
    mag = 10 ** int(f"{raw:e}".split("e")[1])
    for mult in (1, 2, 2.5, 5, 10):
        if raw <= mult * mag:
            step = mult * mag
            break
    start = step * int(lo / step)
    ticks = []
    t = start
    while t <= hi + step * 0.5:
        if t >= lo - step * 0.5:
            ticks.append(round(t, 10))
        t += step
    return ticks


def _span(values: list[float], pad: float = 0.06) -> tuple[float, float]:
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0
    d = (hi - lo) * pad
    return lo - d, hi + d


def svg_scatter(
    title: str,
    series: dict[str, list[tuple[float, float]]],
    xlabel: str,
    ylabel: str,
    lines: dict[str, list[tuple[float, float]]] | None = None,
) -> str:
    """Scatter plot with optional overlay polylines (e.g. a frontier)."""
    if not series or not any(series.values()):
        raise ValueError("need at least one non-empty series")
    fig = SvgFigure()
    fig.title(title)
    fig.axes(xlabel, ylabel)
    all_pts = [p for pts in series.values() for p in pts]
    if lines:
        all_pts += [p for pts in lines.values() for p in pts]
    x_lo, x_hi = _span([p[0] for p in all_pts])
    y_lo, y_hi = _span([p[1] for p in all_pts])

    def sx(x):
        return fig.margin_left + (x - x_lo) / (x_hi - x_lo) * fig.plot_w

    def sy(y):
        return fig.margin_top + (1 - (y - y_lo) / (y_hi - y_lo)) * fig.plot_h

    for t in _nice_ticks(x_lo, x_hi):
        fig.x_tick(sx(t), f"{t:g}")
    for t in _nice_ticks(y_lo, y_hi):
        fig.y_tick(sy(t), f"{t:g}")
    for i, (name, pts) in enumerate(series.items()):
        color = PALETTE[i % len(PALETTE)]
        kind = _MARKERS[i % len(_MARKERS)]
        for x, y in pts:
            fig.marker(sx(x), sy(y), color, kind)
    if lines:
        for j, (name, pts) in enumerate(lines.items()):
            color = PALETTE[(len(series) + j) % len(PALETTE)]
            path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
            fig.add(f'<polyline points="{path}" fill="none" '
                    f'stroke="{color}" stroke-width="2"/>')
    fig.legend(list(series) + list(lines or {}))
    return fig.render()


def svg_line_chart(
    title: str,
    series: dict[str, list[tuple[float, float]]],
    xlabel: str,
    ylabel: str,
) -> str:
    """Line chart (points connected in x order), one line per series."""
    if not series or not any(series.values()):
        raise ValueError("need at least one non-empty series")
    fig = SvgFigure()
    fig.title(title)
    fig.axes(xlabel, ylabel)
    all_pts = [p for pts in series.values() for p in pts]
    x_lo, x_hi = _span([p[0] for p in all_pts])
    y_lo, y_hi = _span([p[1] for p in all_pts], pad=0.08)

    def sx(x):
        return fig.margin_left + (x - x_lo) / (x_hi - x_lo) * fig.plot_w

    def sy(y):
        return fig.margin_top + (1 - (y - y_lo) / (y_hi - y_lo)) * fig.plot_h

    for t in _nice_ticks(x_lo, x_hi):
        fig.x_tick(sx(t), f"{t:g}")
    for t in _nice_ticks(y_lo, y_hi):
        fig.y_tick(sy(t), f"{t:g}")
    for i, (name, pts) in enumerate(series.items()):
        color = PALETTE[i % len(PALETTE)]
        ordered = sorted(pts)
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in ordered)
        fig.add(f'<polyline points="{path}" fill="none" stroke="{color}" '
                f'stroke-width="2"/>')
        for x, y in ordered:
            fig.marker(sx(x), sy(y), color, _MARKERS[i % len(_MARKERS)], 2.5)
    fig.legend(list(series))
    return fig.render()


def svg_bar_chart(
    title: str,
    categories: list[str],
    series: dict[str, list[float | None]],
    xlabel: str,
    ylabel: str,
) -> str:
    """Grouped bar chart; None entries (unschedulable caps) are skipped."""
    if not categories or not series:
        raise ValueError("need categories and at least one series")
    for name, vals in series.items():
        if len(vals) != len(categories):
            raise ValueError(
                f"series {name!r} has {len(vals)} values for "
                f"{len(categories)} categories"
            )
    fig = SvgFigure()
    fig.title(title)
    fig.axes(xlabel, ylabel)
    flat = [v for vals in series.values() for v in vals if v is not None]
    y_lo = min(0.0, min(flat))
    y_hi = max(0.0, max(flat))
    y_lo, y_hi = _span([y_lo, y_hi], pad=0.08)

    def sy(y):
        return fig.margin_top + (1 - (y - y_lo) / (y_hi - y_lo)) * fig.plot_h

    for t in _nice_ticks(y_lo, y_hi):
        fig.y_tick(sy(t), f"{t:g}")

    n_cat, n_ser = len(categories), len(series)
    group_w = fig.plot_w / n_cat
    bar_w = group_w * 0.8 / n_ser
    zero_y = sy(0.0)
    for c, cat in enumerate(categories):
        gx = fig.margin_left + group_w * (c + 0.5)
        fig.x_tick(gx, cat)
        for s, (name, vals) in enumerate(series.items()):
            v = vals[c]
            if v is None:
                continue
            color = PALETTE[s % len(PALETTE)]
            bx = gx - group_w * 0.4 + s * bar_w
            top = min(sy(v), zero_y)
            h = abs(sy(v) - zero_y)
            fig.add(
                f'<rect x="{bx:.1f}" y="{top:.1f}" width="{bar_w:.1f}" '
                f'height="{h:.1f}" fill="{color}"/>'
            )
    fig.add(
        f'<line x1="{fig.margin_left}" y1="{zero_y:.1f}" '
        f'x2="{fig.margin_left + fig.plot_w:.1f}" y2="{zero_y:.1f}" '
        f'stroke="#333"/>'
    )
    fig.legend(list(series))
    return fig.render()
