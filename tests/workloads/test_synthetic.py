"""Unit tests for synthetic workloads."""

import pytest

from repro.dag import deep_validate
from repro.machine import SocketPowerModel
from repro.simulator import Engine, MaxPerformancePolicy, build_dag, trace_application
from repro.workloads import (
    imbalanced_collective_app,
    random_application,
    two_rank_exchange,
)


class TestTwoRankExchange:
    def test_small_enough_for_flow_ilp(self):
        app = two_rank_exchange(phases=2)
        graph, _ = build_dag(app)
        assert graph.n_edges < 30  # the paper's flow-ILP practical limit

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            two_rank_exchange(phases=0)

    def test_executes(self):
        app = two_rank_exchange(phases=2)
        models = [SocketPowerModel(), SocketPowerModel()]
        res = Engine(models).run(app, MaxPerformancePolicy())
        assert res.makespan_s > 0
        assert len(res.records) == app.n_tasks()

    def test_imbalance_parameter(self):
        app = two_rank_exchange(phases=1, imbalance=2.0)
        k0 = app.compute_ops(0)[0].kernel
        k1 = app.compute_ops(1)[0].kernel
        assert k1.cpu_seconds == pytest.approx(2.0 * k0.cpu_seconds)


class TestImbalancedCollective:
    def test_structure(self):
        app = imbalanced_collective_app(n_ranks=4, iterations=3)
        assert app.n_ranks == 4
        assert app.n_tasks() == 12
        graph, _ = build_dag(app)
        deep_validate(graph)

    def test_spread(self):
        app = imbalanced_collective_app(n_ranks=4, spread=1.5, iterations=1)
        works = sorted(
            op.kernel.cpu_seconds
            for prog in app.programs
            for op in prog
            if hasattr(op, "kernel")
        )
        assert works[-1] / works[0] == pytest.approx(1.5)


class TestRandomApplication:
    @pytest.mark.parametrize("seed", range(6))
    def test_always_executable_and_traceable(self, seed):
        app = random_application(n_ranks=3, iterations=2, seed=seed)
        models = [SocketPowerModel() for _ in range(3)]
        res = Engine(models).run(app, MaxPerformancePolicy())
        assert res.makespan_s > 0
        trace = trace_application(app, models)
        deep_validate(trace.graph)

    def test_deterministic(self):
        a = random_application(seed=5)
        b = random_application(seed=5)
        for pa, pb in zip(a.programs, b.programs):
            assert pa == pb
