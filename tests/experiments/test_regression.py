"""Tests for the reference-result drift checker."""

import pytest

from repro.experiments import verify_reference_results


class FakeExhibit:
    def __init__(self, text: str):
        self._text = text

    def render(self) -> str:
        return self._text


class TestVerifyReference:
    def test_identical_passes(self, tmp_path):
        (tmp_path / "foo.txt").write_text("hello\nworld\n")
        report = verify_reference_results(
            tmp_path, {"foo": FakeExhibit("hello\nworld")}
        )
        assert report.ok
        assert report.checked == ["foo"]
        assert "OK" in report.summary()

    def test_drift_detected_with_diff(self, tmp_path):
        (tmp_path / "foo.txt").write_text("value: 1.0\n")
        report = verify_reference_results(
            tmp_path, {"foo": FakeExhibit("value: 2.0")}
        )
        assert not report.ok
        assert "foo" in report.drifted
        assert "-value: 1.0" in report.drifted["foo"]
        assert "+value: 2.0" in report.drifted["foo"]
        assert "FAILED" in report.summary()

    def test_missing_reference_reported(self, tmp_path):
        report = verify_reference_results(
            tmp_path, {"bar": FakeExhibit("x")}
        )
        assert not report.ok
        assert report.missing == ["bar"]

    def test_trailing_newlines_ignored(self, tmp_path):
        (tmp_path / "foo.txt").write_text("a\n\n\n")
        report = verify_reference_results(tmp_path, {"foo": FakeExhibit("a")})
        assert report.ok

    def test_pinned_fast_exhibits_still_match(self):
        """The repository's own pinned references regenerate identically
        (fast exhibits only; the sweeps are checked by the harness)."""
        from pathlib import Path

        from repro.experiments import figure1_pareto_frontier, overheads_summary

        results_dir = Path(__file__).resolve().parents[2] / "results"
        if not (results_dir / "fig1.txt").exists():
            pytest.skip("no pinned results in this checkout")
        report = verify_reference_results(
            results_dir,
            {
                "fig1": figure1_pareto_frontier(),
                "overheads": overheads_summary(),
            },
        )
        assert report.ok, report.summary()
