"""A worker-process fleet serving tasks over local sockets.

:class:`SocketWorkerBackend` is the transport the always-on service
(:mod:`repro.service`) runs on: a parent process listens on a local
UNIX-domain socket (or ``tcp://host:port``), worker processes connect,
handshake, and then serve one task at a time over a length-prefixed
pickle protocol.

The fleet survives its workers:

* **handshake** — a connecting worker sends ``hello`` with its pid, the
  protocol version, and the fleet's session token; anything else (a
  stray client, a version-skewed worker) is dropped before it can be
  assigned work;
* **heartbeat** — every worker beats from a daemon thread (so a worker
  busy in a long solve still beats); the parent's monitor closes
  connections whose heartbeats stop, turning a hung worker into an
  ordinary worker death;
* **death detection** — a closed/errored connection (SIGKILL, OOM,
  crash) immediately fails that worker's in-flight task with
  :class:`WorkerDiedError`, surfaced to the runner as the standard
  :class:`~repro.exec.backends.base.WorkerLostError` signal, so the
  runner's charge-one-attempt / recover / resubmit machinery applies
  unchanged;
* **reconnect / respawn** — :meth:`SocketWorkerBackend.recover`
  respawns self-spawned workers back to strength (or, for externally
  managed fleets, waits for replacements to reconnect); queued tasks
  drain onto whichever workers are alive.

Wire protocol (version 1): each frame is a 4-byte big-endian length
followed by a pickled dict.  Kinds: ``hello``/``welcome`` (handshake),
``task`` (parent→worker: a task id plus the function, item, and
observability wants), ``result``/``task_error`` (worker→parent),
``heartbeat`` (worker→parent), ``shutdown`` (parent→worker).  Tasks run
through :func:`~repro.exec.backends.base.run_task`, so results carry
the same observability payloads as every other transport and the
parent's submission-order merge keeps parallel artifacts byte-identical
to serial ones.

Workers are started with ``python -m repro.exec.backends.sockets
--connect <address> --token <token>`` — this module doubles as the
worker entry point — or via the ``repro-exp worker`` CLI verb, which
wraps the same :func:`run_worker`.

Fleet health lands in *operational* telemetry only (``fleet.*``
counters and gauges): reader and monitor threads tally internally and
the driver thread flushes, because metrics contexts do not cross
threads.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque

from ...obs.metrics import inc as metric_inc
from ...obs.metrics import set_gauge
from ..timing import count
from .base import (
    BackendTimeoutError,
    ExecBackend,
    TaskPayload,
    TaskSpec,
    WorkerLostError,
    run_task,
)

__all__ = [
    "PROTOCOL_VERSION",
    "RemoteTaskError",
    "SocketWorkerBackend",
    "WorkerDiedError",
    "run_worker",
]

#: Bumped whenever the frame layout or message kinds change; a worker
#: whose hello carries a different version is refused at handshake.
PROTOCOL_VERSION = 1

_HANDSHAKE_TIMEOUT_S = 10.0


class WorkerDiedError(RuntimeError):
    """A fleet worker's connection died with a task in flight."""

    def __init__(self, pid: int | None, detail: str) -> None:
        super().__init__(f"fleet worker pid={pid} died: {detail}")
        self.pid = pid


class RemoteTaskError(RuntimeError):
    """A task failed in a worker with an exception that could not travel.

    Carries the original type name and message so journals and outcome
    docs still identify the real failure even when the exception object
    itself was unpicklable.
    """

    def __init__(self, error_type: str, error_message: str) -> None:
        super().__init__(f"{error_type}: {error_message}")
        self.error_type = error_type
        self.error_message = error_message


# ----------------------------------------------------------------------
# Framing: 4-byte big-endian length + pickle.
def _send_frame(sock: socket.socket, obj: dict, lock: threading.Lock) -> None:
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    frame = len(data).to_bytes(4, "big") + data
    with lock:
        sock.sendall(frame)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            return None
        buf.extend(chunk)
    return bytes(buf)


def _recv_frame(sock: socket.socket) -> dict | None:
    header = _recv_exact(sock, 4)
    if header is None:
        return None
    body = _recv_exact(sock, int.from_bytes(header, "big"))
    if body is None:
        return None
    return pickle.loads(body)


def _parse_tcp(address: str) -> tuple[str, int]:
    hostport = address[len("tcp://"):]
    host, _, port = hostport.rpartition(":")
    return host, int(port)


def _connect(address: str) -> socket.socket:
    if address.startswith("tcp://"):
        return socket.create_connection(_parse_tcp(address))
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(address)
    return sock


def _portable_error(exc: BaseException) -> BaseException | dict:
    """The exception itself when it can cross the wire, else a doc.

    Round-trips through pickle *in the worker* before sending: an
    exception that fails to pickle (or to unpickle) would otherwise
    kill the connection it travels on and misreport a task failure as
    a worker death.
    """
    try:
        return pickle.loads(pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return {"error_type": type(exc).__name__, "error_message": str(exc)}


# ----------------------------------------------------------------------
class _FleetHandle:
    """One submitted task: queued, in flight, settled, or lost."""

    __slots__ = (
        "task_id", "spec", "event", "payload", "error", "lost", "cancelled",
    )

    def __init__(self, task_id: int, spec: TaskSpec) -> None:
        self.task_id = task_id
        self.spec = spec
        self.event = threading.Event()
        self.payload: TaskPayload | None = None
        self.error: BaseException | None = None
        self.lost: WorkerDiedError | None = None
        self.cancelled = False


class _Worker:
    """Parent-side state of one connected fleet worker."""

    __slots__ = (
        "conn", "pid", "send_lock", "alive", "idle", "current", "last_beat",
    )

    def __init__(self, conn: socket.socket, pid: int | None) -> None:
        self.conn = conn
        self.pid = pid
        self.send_lock = threading.Lock()
        self.alive = True
        self.idle = True
        self.current: _FleetHandle | None = None
        self.last_beat = time.monotonic()


class SocketWorkerBackend(ExecBackend):
    """Task transport over a local socket worker fleet.

    Parameters
    ----------
    address:
        Where the fleet listens: a filesystem path (UNIX-domain socket)
        or ``tcp://host:port`` (``port`` 0 picks a free port).  None
        (the default) creates a UNIX socket in a private temp dir.
    spawn:
        Whether :meth:`start` launches its own worker processes (the
        default) or waits for externally started workers (``repro-exp
        worker --connect ...``) to connect.
    token:
        Session token workers must present at handshake.  Generated
        when omitted; pass one explicitly for externally managed
        fleets.
    heartbeat_s / heartbeat_timeout_s:
        Worker beat interval, and how long the parent tolerates silence
        before declaring a worker hung (default ``10 x heartbeat_s``).
    connect_timeout_s:
        How long :meth:`start` and :meth:`recover` wait for workers to
        (re)connect before raising.
    """

    def __init__(
        self,
        address: str | None = None,
        spawn: bool = True,
        token: str | None = None,
        heartbeat_s: float = 1.0,
        heartbeat_timeout_s: float | None = None,
        connect_timeout_s: float = 30.0,
    ) -> None:
        if heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be positive, got {heartbeat_s}")
        self._address_req = address
        self.spawn = spawn
        self.token = token if token is not None else os.urandom(16).hex()
        self.heartbeat_s = heartbeat_s
        self.heartbeat_timeout_s = (
            heartbeat_timeout_s if heartbeat_timeout_s is not None
            else 10.0 * heartbeat_s
        )
        self.connect_timeout_s = connect_timeout_s
        self.address: str | None = None
        self._listener: socket.socket | None = None
        self._tmpdir: str | None = None
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._workers: list[_Worker] = []
        self._procs: list[subprocess.Popen] = []
        self._pending: deque[_FleetHandle] = deque()
        self._tally: dict[str, int] = {}
        self._threads: list[threading.Thread] = []
        self._n_workers = 0
        self._next_task_id = 0
        self._closing = False

    # -- lifecycle -----------------------------------------------------
    def start(self, n_workers: int) -> None:
        if self._listener is not None:
            return
        self._n_workers = max(1, n_workers)
        addr = self._address_req
        if addr is None:
            self._tmpdir = tempfile.mkdtemp(prefix="repro-fleet-")
            addr = os.path.join(self._tmpdir, "fleet.sock")
        if addr.startswith("tcp://"):
            host, port = _parse_tcp(addr)
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((host, port))
            self.address = f"tcp://{host}:{listener.getsockname()[1]}"
        else:
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(addr)
            self.address = addr
        listener.listen(self._n_workers * 2 + 2)
        self._listener = listener
        self._spawn_thread(self._accept_loop, "fleet-accept")
        self._spawn_thread(self._monitor_loop, "fleet-monitor")
        if self.spawn:
            for _ in range(self._n_workers):
                self._launch_worker()
        self._await_workers(self._n_workers)
        self._flush()

    def _spawn_thread(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def _launch_worker(self) -> None:
        assert self.address is not None
        # -c instead of -m: runpy would re-execute this module under
        # __main__ after the package import already loaded it, and warn.
        proc = subprocess.Popen([
            sys.executable, "-c",
            "import sys; from repro.exec.backends.sockets import main; "
            "sys.exit(main(sys.argv[1:]))",
            "--connect", self.address,
            "--token", self.token,
            "--heartbeat", str(self.heartbeat_s),
        ])
        self._procs.append(proc)

    def _await_workers(self, want: int) -> None:
        deadline = time.monotonic() + self.connect_timeout_s
        with self._cond:
            while self._live_count() < want:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeError(
                        f"fleet: {self._live_count()}/{want} workers "
                        f"connected within {self.connect_timeout_s:g}s "
                        f"(address {self.address})"
                    )
                self._cond.wait(remaining)

    def _live_count(self) -> int:
        return sum(1 for w in self._workers if w.alive)

    def worker_pids(self) -> list[int]:
        """Pids of the currently live workers (chaos tests kill these)."""
        with self._lock:
            return [w.pid for w in self._workers if w.alive and w.pid]

    # -- accept / read / monitor threads -------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            threading.Thread(
                target=self._handshake, args=(conn,),
                name="fleet-handshake", daemon=True,
            ).start()

    def _handshake(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(_HANDSHAKE_TIMEOUT_S)
            hello = _recv_frame(conn)
            if (
                hello is None
                or hello.get("kind") != "hello"
                or hello.get("protocol") != PROTOCOL_VERSION
                or hello.get("token") != self.token
            ):
                conn.close()
                return
            pid = hello.get("pid")
            worker = _Worker(conn, pid)
            _send_frame(conn, {"kind": "welcome"}, worker.send_lock)
            conn.settimeout(None)
        except OSError:
            conn.close()
            return
        with self._cond:
            if self._closing:
                conn.close()
                return
            self._workers.append(worker)
            self._note("fleet.worker_connected")
            self._pump_locked()
            self._cond.notify_all()
        threading.Thread(
            target=self._read_loop, args=(worker,),
            name=f"fleet-read-{pid}", daemon=True,
        ).start()

    def _read_loop(self, worker: _Worker) -> None:
        while True:
            try:
                msg = _recv_frame(worker.conn)
            except Exception:
                # OSError, UnpicklingError, or a frame whose exception
                # class does not exist here: all read as a dead worker.
                msg = None
            if msg is None:
                self._mark_dead(worker, "connection closed")
                return
            kind = msg.get("kind")
            if kind == "heartbeat":
                worker.last_beat = time.monotonic()
                continue
            if kind not in ("result", "task_error"):
                continue
            worker.last_beat = time.monotonic()
            with self._lock:
                handle = worker.current
                worker.current = None
                worker.idle = True
                if handle is not None and handle.task_id == msg.get("task_id"):
                    if not handle.cancelled:
                        if kind == "result":
                            handle.payload = msg["payload"]
                        else:
                            err = msg["error"]
                            if isinstance(err, BaseException):
                                handle.error = err
                            else:
                                handle.error = RemoteTaskError(
                                    str(err.get("error_type")),
                                    str(err.get("error_message")),
                                )
                        handle.event.set()
                self._pump_locked()

    def _monitor_loop(self) -> None:
        while True:
            time.sleep(self.heartbeat_s)
            with self._lock:
                if self._closing:
                    return
                stale = [
                    w for w in self._workers
                    if w.alive
                    and time.monotonic() - w.last_beat > self.heartbeat_timeout_s
                ]
            for worker in stale:
                # Closing the socket makes the reader see EOF and run
                # the ordinary death path: a hung worker becomes a dead
                # worker.
                self._note_locked_free("fleet.worker_hung")
                try:
                    worker.conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    worker.conn.close()
                except OSError:
                    pass

    def _mark_dead(self, worker: _Worker, detail: str) -> None:
        with self._cond:
            if not worker.alive:
                return
            worker.alive = False
            worker.idle = False
            try:
                worker.conn.close()
            except OSError:
                pass
            handle = worker.current
            worker.current = None
            if handle is not None and not handle.event.is_set():
                handle.lost = WorkerDiedError(worker.pid, detail)
                handle.event.set()
            if worker in self._workers:
                # Keep the roster bounded over a long service lifetime.
                self._workers.remove(worker)
            self._note("fleet.worker_lost")
            self._pump_locked()
            self._cond.notify_all()

    # -- dispatch ------------------------------------------------------
    def _pump_locked(self) -> None:
        """Assign queued handles to idle workers (caller holds the lock)."""
        while self._pending:
            worker = next(
                (w for w in self._workers if w.alive and w.idle), None
            )
            if worker is None:
                return
            handle = self._pending.popleft()
            if handle.cancelled:
                continue
            worker.idle = False
            worker.current = handle
            spec = handle.spec
            try:
                _send_frame(worker.conn, {
                    "kind": "task",
                    "task_id": handle.task_id,
                    "fn": spec.fn,
                    "item": spec.item,
                    "wants": (
                        spec.want_trace, spec.want_audit,
                        spec.want_metrics, spec.want_profile,
                    ),
                }, worker.send_lock)
            except (OSError, pickle.PicklingError, TypeError,
                    AttributeError) as exc:
                if isinstance(exc, OSError):
                    # The connection is gone; fail over to another
                    # worker rather than charging the task.
                    worker.alive = False
                    worker.current = None
                    try:
                        worker.conn.close()
                    except OSError:
                        pass
                    if worker in self._workers:
                        self._workers.remove(worker)
                    self._note("fleet.worker_lost")
                    self._pending.appendleft(handle)
                    continue
                # The task itself cannot cross the wire: settle it with
                # its own error (mirrors ProcessPoolExecutor submit).
                worker.idle = True
                worker.current = None
                handle.error = exc
                handle.event.set()

    # -- ExecBackend ---------------------------------------------------
    def submit(self, spec: TaskSpec) -> _FleetHandle:
        if self._listener is None:
            raise RuntimeError("SocketWorkerBackend.submit before start()")
        with self._lock:
            self._next_task_id += 1
            handle = _FleetHandle(self._next_task_id, spec)
            self._pending.append(handle)
            self._pump_locked()
        self._flush()
        return handle

    def result(self, handle: _FleetHandle, timeout_s: float | None) -> TaskPayload:
        settled = handle.event.wait(timeout_s)
        self._flush()
        if not settled:
            raise BackendTimeoutError(
                TimeoutError(f"fleet task {handle.task_id} deadline expired")
            ) from None
        if handle.lost is not None:
            raise WorkerLostError(handle.lost) from handle.lost
        if handle.error is not None:
            raise handle.error
        assert handle.payload is not None
        return handle.payload

    def cancel(self, handle: _FleetHandle) -> None:
        with self._lock:
            handle.cancelled = True
            try:
                self._pending.remove(handle)
            except ValueError:
                pass  # in flight (late result will be dropped) or settled

    def recover(self) -> None:
        """Bring the fleet back to strength after worker deaths.

        Self-spawned fleets respawn the shortfall; externally managed
        fleets wait up to ``connect_timeout_s`` for replacement workers
        to connect.  Either way, queued tasks drain onto whoever is
        alive once capacity returns.
        """
        with self._lock:
            deficit = self._n_workers - self._live_count()
        if deficit > 0 and self.spawn:
            for _ in range(deficit):
                self._launch_worker()
                self._note_locked_free("fleet.worker_respawned")
        if deficit > 0:
            self._await_workers(self._n_workers if self.spawn else 1)
        self._flush()

    def needs_resubmit(self, handle: _FleetHandle) -> bool:
        return handle.lost is not None

    def shutdown(self) -> None:
        with self._cond:
            self._closing = True
            workers = list(self._workers)
            self._pending.clear()
            self._cond.notify_all()
        for worker in workers:
            try:
                _send_frame(
                    worker.conn, {"kind": "shutdown"}, worker.send_lock
                )
            except OSError:
                pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        for proc in self._procs:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5.0)
        self._procs.clear()
        for worker in workers:
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.alive = False
        if self._tmpdir is not None:
            sock_path = os.path.join(self._tmpdir, "fleet.sock")
            for path in (sock_path, self._tmpdir):
                try:
                    os.unlink(path) if path == sock_path else os.rmdir(path)
                except OSError:
                    pass
            self._tmpdir = None

    # -- telemetry (thread-safe tally, driver-thread flush) ------------
    def _note(self, name: str) -> None:
        """Tally one fleet event (caller holds the lock)."""
        self._tally[name] = self._tally.get(name, 0) + 1

    def _note_locked_free(self, name: str) -> None:
        with self._lock:
            self._note(name)

    def _flush(self) -> None:
        """Publish tallied fleet events from the driver thread.

        Reader/monitor threads cannot record into the driver's
        contextvar-scoped telemetry and metrics, so they tally under
        the fleet lock and the driver flushes whenever it touches the
        backend.  Fleet health is wall-clock dependent: operational by
        contract.
        """
        with self._lock:
            pending, self._tally = self._tally, {}
            live = self._live_count()
            queued = len(self._pending)
        for name, n in pending.items():
            count(name, n)
            metric_inc(name, n, operational=True)
        set_gauge("fleet.workers_live", live, operational=True)
        set_gauge("fleet.queue_depth", queued, operational=True)


# ----------------------------------------------------------------------
# Worker side.
def run_worker(
    address: str,
    token: str,
    heartbeat_s: float = 1.0,
) -> int:
    """Serve tasks from a fleet parent until told to shut down.

    Connects to ``address``, handshakes with ``token``, then loops:
    receive a task, run it through :func:`~repro.exec.backends.base.
    run_task`, send back the observability-bearing payload (or the
    task's exception).  A daemon thread heartbeats every
    ``heartbeat_s`` so long solves don't read as hangs.  Returns a
    process exit code.
    """
    try:
        sock = _connect(address)
    except OSError as exc:
        print(f"fleet worker: cannot connect to {address}: {exc}",
              file=sys.stderr)
        return 1
    send_lock = threading.Lock()
    try:
        _send_frame(sock, {
            "kind": "hello",
            "pid": os.getpid(),
            "protocol": PROTOCOL_VERSION,
            "token": token,
        }, send_lock)
        welcome = _recv_frame(sock)
    except OSError:
        welcome = None
    if welcome is None or welcome.get("kind") != "welcome":
        print("fleet worker: handshake refused", file=sys.stderr)
        return 1

    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                _send_frame(
                    sock, {"kind": "heartbeat", "pid": os.getpid()}, send_lock
                )
            except OSError:
                return

    threading.Thread(target=_beat, name="fleet-beat", daemon=True).start()

    try:
        while True:
            try:
                msg = _recv_frame(sock)
            except (OSError, EOFError):
                return 0
            if msg is None or msg.get("kind") == "shutdown":
                return 0
            if msg.get("kind") != "task":
                continue
            task_id = msg.get("task_id")
            try:
                wants = tuple(msg.get("wants") or (False,) * 4)
                payload = run_task(msg["fn"], msg["item"], *wants)
                out = {"kind": "result", "task_id": task_id,
                       "payload": payload}
            except Exception as exc:
                out = {"kind": "task_error", "task_id": task_id,
                       "error": _portable_error(exc)}
            try:
                _send_frame(sock, out, send_lock)
            except (pickle.PicklingError, TypeError, AttributeError) as exc:
                # The payload itself cannot cross the wire; report that
                # as the task's failure rather than dying silently.
                try:
                    _send_frame(sock, {
                        "kind": "task_error",
                        "task_id": task_id,
                        "error": {
                            "error_type": type(exc).__name__,
                            "error_message": str(exc),
                        },
                    }, send_lock)
                except OSError:
                    return 0
            except OSError:
                return 0
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.exec.backends.sockets``: the worker entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-fleet-worker",
        description="Serve sweep tasks to a repro socket fleet.",
    )
    parser.add_argument("--connect", required=True,
                        help="fleet address (UNIX socket path or tcp://host:port)")
    parser.add_argument("--token", required=True, help="fleet session token")
    parser.add_argument("--heartbeat", type=float, default=1.0,
                        help="heartbeat interval in seconds")
    args = parser.parse_args(argv)
    return run_worker(args.connect, args.token, heartbeat_s=args.heartbeat)


if __name__ == "__main__":
    raise SystemExit(main())
