"""Static device-split power caps: the EcoShift-style baseline.

On a heterogeneous node the fixed-order LP constrains *total* node power
per event, so it is free to shift watts between the CPU and the offload
devices from one task to the next.  Real systems often cannot: firmware
partitions the node cap into fixed per-device budgets (x% to the CPU
package, the rest to the GPU).  This module models that baseline by
adding, on top of the standard fixed-order model, one extra row per
(event, device group): the power drawn by configurations living on the
group's devices must stay within the group's fixed share of the cap.

Every static split is a restriction of the single-cap LP (its feasible
region is the LP's intersected with the split rows), so the LP bound is
never worse than the *best* static split — the gap between them is
exactly the value of dynamic cross-device power shifting, which is the
headline exhibit of the heterogeneous machine layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exec.timing import span
from .fixed_order_lp import FixedOrderLpResult, compile_fixed_order
from .model import CompiledModel, ProblemInstance, extract_schedule
from .solver import LpStatus

__all__ = [
    "SPLIT_ROW_TAG",
    "DeviceSplitResult",
    "compile_device_split",
    "solve_device_split_lp",
    "best_static_split",
]

#: Tag prefix on the per-group power rows; kept distinct from
#: :data:`~.model.CAP_ROW_TAG` so parametric cap re-solves of the plain
#: model can never touch (or be confused with) split rows.
SPLIT_ROW_TAG = "cap-split"


def _device_group_map(groups: dict[str, tuple[str, ...]]) -> dict[str, str]:
    mapping: dict[str, str] = {}
    for name, device_ids in groups.items():
        for device_id in device_ids:
            if device_id in mapping:
                raise ValueError(f"device {device_id!r} appears in two groups")
            mapping[device_id] = name
    return mapping


def compile_device_split(
    instance: ProblemInstance,
    cap_w: float,
    shares: dict[str, float],
    groups: dict[str, tuple[str, ...]],
    power_tiebreak: float = 1e-9,
    assembly: str = "bulk",
) -> CompiledModel:
    """The fixed-order model plus fixed per-device-group cap shares.

    ``groups`` maps group names to the device ids they contain (see
    :func:`repro.machine.device.device_power_groups`); ``shares`` maps
    the same names to their fraction of ``cap_w``.  The legacy empty
    device id counts toward a group named ``"cpu"`` when present.
    """
    if abs(sum(shares.values()) - 1.0) > 1e-9:
        raise ValueError(f"shares must sum to 1, got {shares}")
    if any(s < 0 for s in shares.values()):
        raise ValueError(f"shares must be >= 0, got {shares}")
    compiled = compile_fixed_order(
        instance, cap_w, power_tiebreak=power_tiebreak, assembly=assembly
    )
    dev_group = _device_group_map(groups)
    if "" not in dev_group and "cpu" in shares:
        dev_group[""] = "cpu"

    # The same deduplicated activity sets the aggregate cap rows use.
    events = instance.events
    seen: set[frozenset[int]] = set()
    emit: list[frozenset[int]] = []
    for group in events.groups:
        act = frozenset(events.active[group[0]])
        if not act or act in seen:
            continue
        seen.add(act)
        emit.append(act)

    frontiers = compiled.frontiers
    for act in emit:
        per_group: dict[str, dict[int, float]] = {name: {} for name in shares}
        for edge_id in act:
            tf = frontiers[edge_id]
            for j, col in enumerate(compiled.c_idx[edge_id]):
                device = tf.points[j].config.device
                try:
                    name = dev_group[device]
                except KeyError:
                    raise ValueError(
                        f"frontier point on device {device!r} belongs to no "
                        f"group in {sorted(groups)}"
                    ) from None
                terms = per_group[name]
                terms[col] = terms.get(col, 0.0) + float(tf.powers[j])
        for name, terms in per_group.items():
            if terms:
                compiled.lp.add_le(
                    terms,
                    shares[name] * cap_w,
                    label=f"power-{name}",
                    tag=f"{SPLIT_ROW_TAG}:{name}",
                )
    return compiled


def solve_device_split_lp(
    instance: ProblemInstance,
    cap_w: float,
    shares: dict[str, float],
    groups: dict[str, tuple[str, ...]],
    power_tiebreak: float = 1e-9,
    time_limit_s: float | None = None,
) -> FixedOrderLpResult:
    """Solve the fixed-order LP under one static device-group split."""
    with span("assemble"):
        compiled = compile_device_split(
            instance, cap_w, shares, groups, power_tiebreak=power_tiebreak
        )
    with span("solve"):
        solution = compiled.lp.solve(time_limit_s=time_limit_s)
    if solution.status is not LpStatus.OPTIMAL:
        return FixedOrderLpResult(
            schedule=None, solution=solution, events=instance.events
        )
    schedule = extract_schedule(compiled, solution)
    return FixedOrderLpResult(
        schedule=schedule, solution=solution, events=instance.events
    )


@dataclass
class DeviceSplitResult:
    """Best static split and the whole share scan that found it."""

    best_share: float | None  #: CPU share of the winning split (None: all infeasible)
    best: FixedOrderLpResult | None
    per_share: dict[float, float | None]  #: cpu share -> makespan (None infeasible)

    @property
    def feasible(self) -> bool:
        return self.best is not None and self.best.feasible

    @property
    def makespan_s(self) -> float:
        if self.best is None:
            raise ValueError("no feasible static split")
        return self.best.makespan_s


def best_static_split(
    instance: ProblemInstance,
    cap_w: float,
    groups: dict[str, tuple[str, ...]],
    cpu_shares: tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
    power_tiebreak: float = 1e-9,
    time_limit_s: float | None = None,
) -> DeviceSplitResult:
    """Scan static CPU/offload splits, keeping the best achieved makespan.

    Groups must be the two-sided ``{"cpu": ..., "offload": ...}`` shape;
    each scanned point gives the CPU group ``x`` of the cap and the
    offload group ``1 - x``.
    """
    if set(groups) != {"cpu", "offload"}:
        raise ValueError(f"expected cpu/offload groups, got {sorted(groups)}")
    best: FixedOrderLpResult | None = None
    best_share: float | None = None
    per_share: dict[float, float | None] = {}
    for share in cpu_shares:
        result = solve_device_split_lp(
            instance,
            cap_w,
            {"cpu": share, "offload": 1.0 - share},
            groups,
            power_tiebreak=power_tiebreak,
            time_limit_s=time_limit_s,
        )
        if result.feasible:
            per_share[share] = result.makespan_s
            if best is None or result.makespan_s < best.makespan_s:
                best, best_share = result, share
        else:
            per_share[share] = None
    return DeviceSplitResult(best_share=best_share, best=best, per_share=per_share)
