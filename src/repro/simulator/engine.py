"""Discrete-event execution engine for multi-rank MPI programs.

The engine advances one logical clock per rank through its op list,
matching messages (FIFO per (src, dst, tag) channel, eager protocol) and
synchronizing collectives (a collective completes at the latest entrant's
clock plus the network model's collective cost).  Computation durations and
powers come from the machine models, with the configuration of every task
chosen by a pluggable :class:`ConfigPolicy` — this is where Static,
Conductor, and LP-schedule replay differ.

Timing fidelity knobs mirror the paper's §6.2 overhead measurements:
per-MPI-call profiling overhead (34 µs when tracing), per-task DVFS switch
overhead (145 µs, charged when a policy changes a rank's configuration),
and the policy's own synchronous work at MPI_Pcontrol boundaries (566 µs
per Conductor reallocation), charged to every rank at the barrier.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Protocol

from ..exec.timing import count, span
from ..machine.configuration import Configuration
from ..machine.cpu import CpuSpec, XEON_E5_2670
from ..machine.performance import TaskKernel, TaskTimeModel
from ..machine.power import SocketPowerModel
from ..obs.events import CollectiveEvent, MpiWaitEvent, TaskEvent
from ..obs.recorder import current_recorder
from .network import IB_QDR, NetworkModel
from .program import (
    Application,
    CollectiveOp,
    ComputeOp,
    IrecvOp,
    IsendOp,
    PcontrolOp,
    RecvOp,
    SendOp,
    TaskRef,
    WaitOp,
)

__all__ = ["ConfigPolicy", "TaskRecord", "SimulationResult", "Engine", "MaxPerformancePolicy"]


@dataclass(frozen=True)
class TaskRecord:
    """Everything the runtimes and figures need to know about one task run."""

    ref: TaskRef
    iteration: int
    label: str
    config: Configuration
    start_s: float
    duration_s: float
    power_w: float
    kernel: TaskKernel

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def energy_j(self) -> float:
        return self.duration_s * self.power_w


class ConfigPolicy(Protocol):
    """Chooses a configuration for every task; may react at Pcontrol."""

    def configure(
        self,
        ref: TaskRef,
        kernel: TaskKernel,
        iteration: int,
        current: Configuration | None,
    ) -> Configuration:
        """Configuration for the upcoming task.

        ``current`` is the rank's present configuration (None before the
        first task); returning a different one incurs the engine's DVFS
        switch overhead, so policies implement the paper's 1 ms-threshold
        rule by returning ``current`` for short tasks.
        """
        ...

    def on_pcontrol(self, iteration: int, records: list[TaskRecord]) -> float:
        """Hook at each Pcontrol barrier; returns overhead seconds (>= 0)."""
        ...

    def switch_cost_s(self) -> float:
        """Per-configuration-change overhead this policy pays (0 for RAPL)."""
        ...


class MaxPerformancePolicy:
    """Power-oblivious baseline: fastest configuration for every task."""

    def __init__(self, spec: CpuSpec = XEON_E5_2670) -> None:
        self._tm = TaskTimeModel(spec)
        self._spec = spec

    def configure(self, ref, kernel, iteration, current):
        return Configuration(self._spec.fmax_ghz, self._tm.best_threads(kernel))

    def on_pcontrol(self, iteration, records):
        return 0.0

    def switch_cost_s(self) -> float:
        return 0.0


@dataclass
class SimulationResult:
    """Outcome of one engine run."""

    app_name: str
    makespan_s: float
    records: list[TaskRecord]
    n_ranks: int
    mpi_call_count: int
    collective_count: int
    pcontrol_overhead_s: float = 0.0
    dvfs_switch_count: int = 0

    def records_by_rank(self) -> list[list[TaskRecord]]:
        """Task records grouped by rank, in execution order."""
        by_rank: list[list[TaskRecord]] = [[] for _ in range(self.n_ranks)]
        for r in self.records:
            by_rank[r.ref.rank].append(r)
        return by_rank

    def records_for_iteration(self, iteration: int) -> list[TaskRecord]:
        return [r for r in self.records if r.iteration == iteration]

    def iterations(self) -> list[int]:
        return sorted({r.iteration for r in self.records})

    def total_energy_j(self) -> float:
        return sum(r.energy_j for r in self.records)

    def makespan_after_warmup(self, discard_iterations: int) -> float:
        """Span of tasks after discarding warmup iterations (paper §5.3).

        The paper drops the first three iterations (Conductor's exploration
        phase); comparisons measure the steady-state region only.
        """
        kept = [r for r in self.records if r.iteration >= discard_iterations]
        if not kept:
            raise ValueError(
                f"no records beyond iteration {discard_iterations - 1}"
            )
        start = min(r.start_s for r in kept)
        return self.makespan_s - start


@dataclass
class _RankState:
    clock: float = 0.0
    ptr: int = 0
    config: Configuration | None = None
    collective_idx: int = 0
    waiting_collective: bool = False
    collective_enter_s: float = 0.0
    requests: dict[int, tuple] = field(default_factory=dict)


class Engine:
    """Executes an :class:`Application` under a :class:`ConfigPolicy`.

    Parameters
    ----------
    power_models:
        One per rank (socket) — their efficiency spread is the variability
        the runtimes react to.
    network:
        Interconnect cost model.
    mpi_call_overhead_s:
        CPU cost charged per MPI call (library overhead); the tracer adds
        its measurement cost on top via ``tracing_overhead_s``.
    tracing_overhead_s:
        Extra per-call cost when the profiler is attached (34 µs median in
        the paper).
    """

    def __init__(
        self,
        power_models: list[SocketPowerModel],
        network: NetworkModel = IB_QDR,
        spec: CpuSpec = XEON_E5_2670,
        mpi_call_overhead_s: float = 2e-6,
        tracing_overhead_s: float = 0.0,
    ) -> None:
        if not power_models:
            raise ValueError("need at least one power model")
        self.power_models = power_models
        self.network = network
        self.spec = spec
        # Heterogeneous machines: each rank's timing follows its own
        # socket's CpuSpec (identical to `spec` on homogeneous clusters).
        self.time_models = [TaskTimeModel(pm.spec) for pm in power_models]
        self.time_model = TaskTimeModel(spec)  # engine-level fallback
        self.call_cost = mpi_call_overhead_s + tracing_overhead_s

    # ------------------------------------------------------------------
    def run(self, app: Application, policy: ConfigPolicy) -> SimulationResult:
        """Execute the application to completion under the policy."""
        with span("replay"):
            return self._run(app, policy)

    def _run(self, app: Application, policy: ConfigPolicy) -> SimulationResult:
        if app.n_ranks != len(self.power_models):
            raise ValueError(
                f"application has {app.n_ranks} ranks but engine has "
                f"{len(self.power_models)} power models"
            )
        app.validate()
        n = app.n_ranks
        states = [_RankState() for _ in range(n)]
        channels: dict[tuple[int, int, int], deque[float]] = {}
        records: list[TaskRecord] = []
        task_seq = [0] * n
        iteration_records: list[TaskRecord] = []
        mpi_calls = 0
        mpi_waits = 0
        collectives = 0
        pcontrol_overhead = 0.0
        dvfs_switches = 0
        # Tracing: one contextvar read per run; with tracing off the only
        # per-event cost is a local `is not None` branch.
        rec = current_recorder()

        def arrival(src: int, dst: int, tag: int, send_time: float, size: int) -> None:
            channels.setdefault((src, dst, tag), deque()).append(
                send_time + self.network.message_time(size)
            )

        def try_advance(rank: int) -> bool:
            nonlocal mpi_calls, mpi_waits, dvfs_switches
            st = states[rank]
            if st.waiting_collective or st.ptr >= len(app.programs[rank]):
                return False
            op = app.programs[rank][st.ptr]

            if isinstance(op, ComputeOp):
                ref = TaskRef(rank, task_seq[rank])
                cfg = policy.configure(ref, op.kernel, op.iteration, st.config)
                if st.config is not None and cfg != st.config:
                    st.clock += policy.switch_cost_s()
                    dvfs_switches += 1
                st.config = cfg
                duration = self.time_models[rank].duration(
                    op.kernel, cfg.freq_ghz, cfg.threads, cfg.duty
                )
                power = self.power_models[rank].power(
                    cfg.freq_ghz,
                    cfg.threads,
                    activity=op.kernel.activity,
                    mem_intensity=op.kernel.mem_intensity,
                    duty=cfg.duty,
                )
                rec_task = TaskRecord(
                    ref=ref, iteration=op.iteration, label=op.label, config=cfg,
                    start_s=st.clock, duration_s=duration, power_w=power,
                    kernel=op.kernel,
                )
                records.append(rec_task)
                iteration_records.append(rec_task)
                if rec is not None:
                    rec.emit(TaskEvent(
                        label=op.label, rank=rank, iteration=op.iteration,
                        ts_s=st.clock, dur_s=duration,
                        freq_ghz=cfg.freq_ghz, threads=cfg.threads,
                        duty=cfg.duty, power_w=power,
                    ))
                st.clock += duration
                task_seq[rank] += 1
                st.ptr += 1
                return True

            if isinstance(op, SendOp):
                st.clock += self.call_cost
                mpi_calls += 1
                arrival(rank, op.dst, op.tag, st.clock, op.size_bytes)
                st.ptr += 1
                return True

            if isinstance(op, IsendOp):
                st.clock += self.call_cost
                mpi_calls += 1
                arrival(rank, op.dst, op.tag, st.clock, op.size_bytes)
                st.requests[op.request] = ("send",)
                st.ptr += 1
                return True

            if isinstance(op, IrecvOp):
                st.clock += self.call_cost
                mpi_calls += 1
                st.requests[op.request] = ("recv", op.src, op.tag)
                st.ptr += 1
                return True

            if isinstance(op, RecvOp):
                q = channels.get((op.src, rank, op.tag))
                if not q:
                    return False  # blocked: matching send not yet executed
                t_arrive = q.popleft()
                if rec is not None and t_arrive > st.clock:
                    rec.emit(MpiWaitEvent(
                        name="recv", rank=rank, ts_s=st.clock,
                        dur_s=t_arrive - st.clock,
                    ))
                st.clock = max(st.clock, t_arrive) + self.call_cost
                mpi_calls += 1
                mpi_waits += 1
                st.ptr += 1
                return True

            if isinstance(op, WaitOp):
                req = st.requests.get(op.request)
                if req is None:
                    raise RuntimeError(
                        f"rank {rank}: wait on unposted request {op.request}"
                    )
                if req[0] == "send":
                    st.clock += self.call_cost  # eager send: wait is immediate
                else:
                    _, src, tag = req
                    q = channels.get((src, rank, tag))
                    if not q:
                        return False
                    t_arrive = q.popleft()
                    if rec is not None and t_arrive > st.clock:
                        rec.emit(MpiWaitEvent(
                            name="wait", rank=rank, ts_s=st.clock,
                            dur_s=t_arrive - st.clock,
                        ))
                    st.clock = max(st.clock, t_arrive) + self.call_cost
                mpi_calls += 1
                mpi_waits += 1
                del st.requests[op.request]
                st.ptr += 1
                return True

            if isinstance(op, (CollectiveOp, PcontrolOp)):
                if isinstance(op, CollectiveOp) and op.participants is not None:
                    if tuple(sorted(op.participants)) != tuple(range(n)):
                        raise NotImplementedError(
                            "engine supports all-rank collectives only"
                        )
                st.clock += self.call_cost
                mpi_calls += 1
                st.waiting_collective = True
                st.collective_enter_s = st.clock
                return False  # resolved collectively below

            raise TypeError(f"unknown op {op!r}")

        def resolve_collective() -> bool:
            nonlocal collectives, pcontrol_overhead, iteration_records
            if not all(st.waiting_collective for st in states):
                return False
            ops = [app.programs[r][states[r].ptr] for r in range(n)]
            first = ops[0]
            if not all(type(op) is type(first) for op in ops):
                raise RuntimeError(
                    f"collective mismatch across ranks: {[type(o).__name__ for o in ops]}"
                )
            done = max(st.collective_enter_s for st in states)
            if isinstance(first, PcontrolOp):
                name = "pcontrol"
                overhead = policy.on_pcontrol(first.iteration, list(iteration_records))
                if overhead < 0:
                    raise ValueError("pcontrol overhead must be >= 0")
                done += overhead
                pcontrol_overhead += overhead
                iteration_records = []
            else:
                name = first.kind
                size = max(
                    op.size_bytes for op in ops if isinstance(op, CollectiveOp)
                )
                done += self.network.collective_time(name, n, size)
            collectives += 1
            if rec is not None:
                for r, st in enumerate(states):
                    rec.emit(CollectiveEvent(
                        name=name, rank=r, ts_s=st.collective_enter_s,
                        dur_s=done - st.collective_enter_s,
                    ))
            for st in states:
                st.clock = done
                st.waiting_collective = False
                st.ptr += 1
            return True

        # Main scheduler loop: keep scanning until no rank can progress.
        progress = True
        while progress:
            progress = False
            for rank in range(n):
                while try_advance(rank):
                    progress = True
            if resolve_collective():
                progress = True

        unfinished = [
            r for r in range(n) if states[r].ptr < len(app.programs[r])
        ]
        if unfinished:
            details = {
                r: repr(app.programs[r][states[r].ptr]) for r in unfinished
            }
            raise RuntimeError(f"deadlock: ranks blocked at {details}")

        count("sim.tasks", len(records))
        count("sim.mpi_waits", mpi_waits)
        count("sim.collectives", collectives)
        return SimulationResult(
            app_name=app.name,
            makespan_s=max(st.clock for st in states),
            records=records,
            n_ranks=n,
            mpi_call_count=mpi_calls,
            collective_count=collectives,
            pcontrol_overhead_s=pcontrol_overhead,
            dvfs_switch_count=dvfs_switches,
        )
