"""Analytic task performance model.

A *task* is the computation between two consecutive MPI calls on one rank
(a DAG edge in the paper's terminology).  Its execution time in a
configuration (frequency f, threads n, duty d) follows a two-component
model:

``t(f, n, d) = [ T_cpu * g(n) * (fmax / f)  +  T_mem * h(n) ] / d``

* The **compute** component scales inversely with clock frequency and with
  thread count through an Amdahl term ``g(n) = (1 - pf) + pf / n``.
* The **memory** component is frequency-insensitive (DRAM latency and
  bandwidth do not track core clocks) and scales with threads only up to a
  bandwidth-saturation point, beyond which extra threads add *cache
  contention*: ``h(n) = ((1 - pm) + pm / min(n, sat)) * (1 + cp * max(0, n - ct))``.

The contention term is what makes fewer-than-max threads Pareto-optimal at
moderate power for LULESH (Table 3 of the paper: 5 threads beat 8 at a
50 W cap) while CoMD-like kernels keep 8 threads on the frontier except at
the lowest frequency (Table 1).

Clock modulation (duty < 1) stalls the entire core for (1-d) of each
window, so both components stretch by 1/d.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .cpu import CpuSpec, XEON_E5_2670

__all__ = ["TaskKernel", "TaskTimeModel"]


@dataclass(frozen=True)
class TaskKernel:
    """Computational character of one task (DAG edge).

    Attributes
    ----------
    cpu_seconds:
        Single-thread execution time of the frequency-scalable portion at
        ``fmax``.
    mem_seconds:
        Single-thread execution time of the memory-bound portion.
    parallel_fraction:
        Amdahl parallel fraction of the compute portion.
    mem_parallel_fraction:
        Parallelizable fraction of the memory portion.
    bw_saturation_threads:
        Thread count at which memory bandwidth saturates; additional threads
        do not speed up the memory portion.
    contention_threshold:
        Thread count beyond which shared-cache contention sets in.
    contention_penalty:
        Fractional slowdown of the memory portion per thread beyond the
        threshold.
    activity:
        Dynamic-power activity factor kappa for the power model.
    mem_intensity:
        Memory-system activity in [0, 1] for the uncore power term.
    name:
        Optional label for tracing / reporting.
    """

    cpu_seconds: float
    mem_seconds: float = 0.0
    parallel_fraction: float = 0.99
    mem_parallel_fraction: float = 0.95
    bw_saturation_threads: int = 8
    contention_threshold: int = 8
    contention_penalty: float = 0.0
    activity: float = 1.0
    mem_intensity: float = 0.2
    name: str = ""

    def __post_init__(self) -> None:
        if self.cpu_seconds < 0 or self.mem_seconds < 0:
            raise ValueError("work components must be >= 0")
        if self.cpu_seconds == 0 and self.mem_seconds == 0:
            raise ValueError("task must have some work")
        for frac_name in ("parallel_fraction", "mem_parallel_fraction", "mem_intensity"):
            v = getattr(self, frac_name)
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{frac_name} must be in [0,1], got {v}")
        if self.bw_saturation_threads < 1 or self.contention_threshold < 1:
            raise ValueError("thread thresholds must be >= 1")
        if self.contention_penalty < 0:
            raise ValueError("contention_penalty must be >= 0")
        if self.activity < 0:
            raise ValueError("activity must be >= 0")

    def scaled(self, factor: float) -> "TaskKernel":
        """A kernel with all work multiplied by ``factor`` (load imbalance)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            cpu_seconds=self.cpu_seconds * factor,
            mem_seconds=self.mem_seconds * factor,
        )

    @property
    def total_reference_seconds(self) -> float:
        """Single-thread time at fmax — a convenient magnitude handle."""
        return self.cpu_seconds + self.mem_seconds


class TaskTimeModel:
    """Evaluate task duration for arbitrary configurations.

    Stateless aside from the CPU spec; shared by the simulator, the tracer,
    and configuration-space enumeration.
    """

    def __init__(self, spec: CpuSpec = XEON_E5_2670) -> None:
        self.spec = spec

    def compute_speedup_denominator(self, kernel: TaskKernel, threads: int) -> float:
        """g(n): the Amdahl term of the compute component."""
        pf = kernel.parallel_fraction
        return (1.0 - pf) + pf / threads

    def memory_time_factor(self, kernel: TaskKernel, threads: int) -> float:
        """h(n): bandwidth-saturating scaling with the contention penalty."""
        pm = kernel.mem_parallel_fraction
        effective = min(threads, kernel.bw_saturation_threads)
        base = (1.0 - pm) + pm / effective
        over = max(0, threads - kernel.contention_threshold)
        return base * (1.0 + kernel.contention_penalty * over)

    def duration(
        self,
        kernel: TaskKernel,
        freq_ghz: float,
        threads: int,
        duty: float = 1.0,
    ) -> float:
        """Task execution time in seconds for the given configuration."""
        if not (1 <= threads <= self.spec.cores):
            raise ValueError(
                f"threads must be in [1, {self.spec.cores}], got {threads}"
            )
        if freq_ghz <= 0:
            raise ValueError(f"freq_ghz must be positive, got {freq_ghz}")
        if not (0.0 < duty <= 1.0):
            raise ValueError(f"duty must be in (0,1], got {duty}")
        cpu = (
            kernel.cpu_seconds
            * self.compute_speedup_denominator(kernel, threads)
            * (self.spec.fmax_ghz / freq_ghz)
        )
        mem = kernel.mem_seconds * self.memory_time_factor(kernel, threads)
        return (cpu + mem) / duty

    def best_duration(self, kernel: TaskKernel) -> float:
        """Fastest achievable duration over all admissible configurations."""
        return min(
            self.duration(kernel, self.spec.fmax_ghz, n)
            for n in self.spec.thread_counts()
        )

    def best_threads(self, kernel: TaskKernel) -> int:
        """Thread count minimizing duration at fmax (ties -> fewer threads)."""
        counts = self.spec.thread_counts()
        durations = [self.duration(kernel, self.spec.fmax_ghz, n) for n in counts]
        best = min(range(len(counts)), key=lambda i: (durations[i], counts[i]))
        return counts[best]
