"""Unit tests for power telemetry."""

import numpy as np
import pytest

from repro.machine import Configuration
from repro.simulator import (
    Application,
    ComputeOp,
    Engine,
    PcontrolOp,
    PowerTimeline,
    job_power_timeline,
    verify_power_cap,
)

from .. import conftest


class FixedPolicy:
    def __init__(self, config=Configuration(2.6, 8)):
        self.config = config

    def configure(self, ref, kernel, iteration, current):
        return self.config

    def on_pcontrol(self, iteration, records):
        return 0.0

    def switch_cost_s(self):
        return 0.0


class TestPowerTimeline:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PowerTimeline(times=np.array([0.0, 1.0]), power=np.array([1.0, 2.0]))

    def test_stats(self):
        tl = PowerTimeline(
            times=np.array([0.0, 1.0, 3.0]), power=np.array([10.0, 20.0])
        )
        assert tl.max_power() == 20.0
        assert tl.average_power() == pytest.approx((10 + 2 * 20) / 3)
        assert tl.energy_j() == pytest.approx(50.0)

    def test_power_at(self):
        tl = PowerTimeline(
            times=np.array([0.0, 1.0, 3.0]), power=np.array([10.0, 20.0])
        )
        assert tl.power_at(0.5) == 10.0
        assert tl.power_at(1.0) == 20.0
        assert tl.power_at(2.9) == 20.0
        assert tl.power_at(-1.0) == 0.0
        assert tl.power_at(3.0) == 0.0


class TestJobTimeline:
    def test_parallel_tasks_sum(self, kernel, two_rank_models):
        app = Application(
            "t", [[ComputeOp(kernel)], [ComputeOp(kernel)]]
        )
        engine = Engine(two_rank_models, mpi_call_overhead_s=0.0)
        res = engine.run(app, FixedPolicy())
        tl = job_power_timeline(res, two_rank_models)
        expected = sum(r.power_w for r in res.records)
        assert tl.max_power() == pytest.approx(expected)

    def test_task_slack_mode_holds_power(self, kernel, two_rank_models):
        """With slack_mode='task' a rank's power stays at the previous
        task's level while it waits — the LP formulation's assumption."""
        app = Application(
            "t",
            [[ComputeOp(kernel, 0), PcontrolOp(0)],
             [ComputeOp(kernel.scaled(3.0), 0), PcontrolOp(0)]],
        )
        engine = Engine(two_rank_models, mpi_call_overhead_s=0.0)
        res = engine.run(app, FixedPolicy())
        tl_task = job_power_timeline(res, two_rank_models, slack_mode="task")
        tl_idle = job_power_timeline(res, two_rank_models, slack_mode="idle")
        # Mid-slack instant: after rank 0's task, before rank 1 finishes.
        t_probe = 0.9 * max(r.end_s for r in res.records)
        assert tl_task.power_at(t_probe) > tl_idle.power_at(t_probe)

    def test_energy_conserved_idle_mode(self, kernel, two_rank_models):
        app = conftest.make_p2p_app(kernel)
        res = Engine(two_rank_models).run(app, FixedPolicy())
        tl = job_power_timeline(res, two_rank_models, slack_mode="idle")
        task_energy = res.total_energy_j()
        idle_energy = sum(
            pm.idle_power() for pm in two_rank_models
        ) * res.makespan_s - sum(
            pm.idle_power() * r.duration_s
            for pm, recs in zip(two_rank_models, res.records_by_rank())
            for r in recs
        )
        assert tl.energy_j() == pytest.approx(task_energy + idle_energy, rel=1e-6)

    def test_invalid_slack_mode(self, kernel, two_rank_models):
        app = conftest.make_p2p_app(kernel)
        res = Engine(two_rank_models).run(app, FixedPolicy())
        with pytest.raises(ValueError):
            job_power_timeline(res, two_rank_models, slack_mode="bogus")

    def test_model_count_checked(self, kernel, two_rank_models):
        app = conftest.make_p2p_app(kernel)
        res = Engine(two_rank_models).run(app, FixedPolicy())
        with pytest.raises(ValueError):
            job_power_timeline(res, two_rank_models[:1])


class TestVerifyCap:
    def test_pass_and_fail(self, kernel, two_rank_models):
        app = conftest.make_p2p_app(kernel)
        res = Engine(two_rank_models).run(app, FixedPolicy())
        ok, peak = verify_power_cap(res, two_rank_models, cap_w=1000.0)
        assert ok and peak < 1000.0
        bad, peak2 = verify_power_cap(res, two_rank_models, cap_w=peak / 2)
        assert not bad
        assert peak2 == pytest.approx(peak)


class TestRankTimeline:
    def test_sums_to_job_timeline(self, kernel, two_rank_models):
        from repro.simulator import rank_power_timeline

        app = conftest.make_p2p_app(kernel)
        res = Engine(two_rank_models).run(app, FixedPolicy())
        job = job_power_timeline(res, two_rank_models)
        r0 = rank_power_timeline(res, two_rank_models, 0)
        r1 = rank_power_timeline(res, two_rank_models, 1)
        for t in [0.1 * job.times[-1] * k for k in range(1, 10)]:
            assert r0.power_at(t) + r1.power_at(t) == pytest.approx(
                job.power_at(t), rel=1e-9, abs=1e-9
            )

    def test_rank_bounds(self, kernel, two_rank_models):
        from repro.simulator import rank_power_timeline

        app = conftest.make_p2p_app(kernel)
        res = Engine(two_rank_models).run(app, FixedPolicy())
        with pytest.raises(ValueError):
            rank_power_timeline(res, two_rank_models, 5)

    def test_rank_peak_is_its_task_power(self, kernel, two_rank_models):
        from repro.simulator import rank_power_timeline

        app = conftest.make_p2p_app(kernel)
        res = Engine(two_rank_models).run(app, FixedPolicy())
        r1 = rank_power_timeline(res, two_rank_models, 1)
        peak_task = max(
            r.power_w for r in res.records if r.ref.rank == 1
        )
        assert r1.max_power() == pytest.approx(peak_task)

    def test_single_rank_view_preserves_counts(
        self, kernel, two_rank_models, monkeypatch
    ):
        # The one-rank sub-result is the same job viewed through one
        # rank's records; it must carry the run's MPI/collective counts
        # rather than dropping them to zero.
        import repro.simulator.telemetry as tel_mod

        app = conftest.make_p2p_app(kernel)
        res = Engine(two_rank_models).run(app, FixedPolicy())
        assert res.mpi_call_count > 0 and res.collective_count > 0
        seen = []
        original = tel_mod.job_power_timeline
        monkeypatch.setattr(
            tel_mod, "job_power_timeline",
            lambda result, models, slack_mode="task": (
                seen.append(result) or original(result, models, slack_mode)
            ),
        )
        tel_mod.rank_power_timeline(res, two_rank_models, 0)
        sub = seen[0]
        assert sub.mpi_call_count == res.mpi_call_count
        assert sub.collective_count == res.collective_count
