"""DAG scheduling analysis: longest paths, critical path, slack.

Given per-edge durations (message edges are fixed; compute edges depend on
the chosen configuration), vertex times follow from the longest-path
recurrence ``v_dst = max over in-edges (v_src + d)`` with the INIT vertex
pinned at zero — exactly the as-soon-as-possible schedule the paper's LP
constraints (2)-(4) describe when power is unconstrained.

The *initial schedule* feeding the LP is the power-unconstrained schedule
with every task at its fastest configuration; its activity windows
``[v_src(task), v_dst(task))`` cover each task plus its trailing slack,
implementing the paper's "slack power equals task power" convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.configuration import ConfigPoint, Configuration
from ..machine.performance import TaskTimeModel
from .graph import TaskGraph, VertexKind

__all__ = [
    "DagSchedule",
    "schedule_fixed_durations",
    "fastest_durations",
    "fastest_configurations",
    "frontier_fastest_configurations",
    "frontier_fastest_durations",
    "frontier_unconstrained_schedule",
    "unconstrained_schedule",
    "critical_path_edges",
    "edge_slack",
]


@dataclass(frozen=True)
class DagSchedule:
    """A timed realization of a DAG: vertex times and edge starts/durations."""

    vertex_times: np.ndarray
    edge_durations: np.ndarray
    edge_starts: np.ndarray
    makespan: float

    def task_window(self, graph: TaskGraph, edge_id: int) -> tuple[float, float]:
        """Activity window of an edge: [src vertex time, dst vertex time)."""
        e = graph.edges[edge_id]
        return (
            float(self.vertex_times[e.src]),
            float(self.vertex_times[e.dst]),
        )


def schedule_fixed_durations(
    graph: TaskGraph, durations: np.ndarray | list[float]
) -> DagSchedule:
    """ASAP schedule for given per-edge durations (longest path from INIT)."""
    d = np.asarray(durations, dtype=float)
    if d.shape != (graph.n_edges,):
        raise ValueError(
            f"durations must have shape ({graph.n_edges},), got {d.shape}"
        )
    if np.any(d < 0):
        raise ValueError("durations must be >= 0")
    times = np.zeros(graph.n_vertices)
    for vid in graph.topological_order():
        incoming = graph.in_edges(vid)
        if incoming:
            times[vid] = max(times[e.src] + d[e.id] for e in incoming)
    starts = np.array([times[e.src] for e in graph.edges])
    makespan = float(times[graph.find_vertex(VertexKind.FINALIZE).id])
    return DagSchedule(
        vertex_times=times, edge_durations=d, edge_starts=starts, makespan=makespan
    )


def fastest_configurations(
    graph: TaskGraph, time_model: TaskTimeModel
) -> dict[int, Configuration]:
    """Per compute edge, the duration-minimizing configuration (fmax)."""
    spec = time_model.spec
    return {
        e.id: Configuration(spec.fmax_ghz, time_model.best_threads(e.kernel))
        for e in graph.compute_edges()
    }


def fastest_durations(graph: TaskGraph, time_model: TaskTimeModel) -> np.ndarray:
    """Per-edge durations with every task at its fastest configuration."""
    d = np.zeros(graph.n_edges)
    for e in graph.edges:
        if e.is_compute:
            d[e.id] = time_model.duration(
                e.kernel, time_model.spec.fmax_ghz, time_model.best_threads(e.kernel)
            )
        else:
            d[e.id] = e.duration_s
    return d


def unconstrained_schedule(
    graph: TaskGraph, time_model: TaskTimeModel
) -> DagSchedule:
    """The power-unconstrained initial schedule used to fix event order."""
    return schedule_fixed_durations(graph, fastest_durations(graph, time_model))


def _fastest_point(points: list[ConfigPoint]) -> ConfigPoint:
    """Duration-minimizing measured point (ties: cheaper, then by config)."""
    return min(points, key=lambda p: (p.duration_s, p.power_w, p.config))


def frontier_fastest_configurations(
    graph: TaskGraph, frontiers: dict[int, list[ConfigPoint]]
) -> dict[int, Configuration]:
    """Per compute edge, the config of the fastest *measured* point.

    The device-aware counterpart of :func:`fastest_configurations`: on a
    heterogeneous node the fastest operating point may live on any device
    (and differ per task), so it must come from the traced frontier
    rather than from one CPU time model.
    """
    return {
        e.id: _fastest_point(frontiers[e.id]).config for e in graph.compute_edges()
    }


def frontier_fastest_durations(
    graph: TaskGraph, frontiers: dict[int, list[ConfigPoint]]
) -> np.ndarray:
    """Per-edge durations with every task at its fastest frontier point."""
    d = np.zeros(graph.n_edges)
    for e in graph.edges:
        if e.is_compute:
            d[e.id] = _fastest_point(frontiers[e.id]).duration_s
        else:
            d[e.id] = e.duration_s
    return d


def frontier_unconstrained_schedule(
    graph: TaskGraph, frontiers: dict[int, list[ConfigPoint]]
) -> DagSchedule:
    """Power-unconstrained initial schedule from traced frontiers.

    Fixes the LP's event order on heterogeneous nodes, where "fastest"
    is a per-task device choice the CPU time model cannot express.
    """
    return schedule_fixed_durations(graph, frontier_fastest_durations(graph, frontiers))


def edge_slack(graph: TaskGraph, schedule: DagSchedule) -> np.ndarray:
    """Slack per edge: destination event time minus (start + duration).

    Zero-slack edges are on a critical path; a task's slack is the time its
    rank would idle before the locally subsequent MPI call can complete.
    """
    slack = np.empty(graph.n_edges)
    for e in graph.edges:
        slack[e.id] = (
            schedule.vertex_times[e.dst]
            - schedule.edge_starts[e.id]
            - schedule.edge_durations[e.id]
        )
    # Clamp tiny negatives from float accumulation.
    np.clip(slack, 0.0, None, out=slack)
    return slack


def critical_path_edges(
    graph: TaskGraph, schedule: DagSchedule, tol: float = 1e-9
) -> list[int]:
    """One critical path from INIT to FINALIZE, as a list of edge ids.

    Walks backward from FINALIZE always following a tight in-edge (one with
    ``v_src + d == v_dst`` within tolerance).
    """
    path: list[int] = []
    vid = graph.find_vertex(VertexKind.FINALIZE).id
    init = graph.find_vertex(VertexKind.INIT).id
    times = schedule.vertex_times
    d = schedule.edge_durations
    while vid != init:
        incoming = graph.in_edges(vid)
        if not incoming:
            break  # disconnected prefix; treat as path start
        tight = min(
            incoming, key=lambda e: abs(times[e.src] + d[e.id] - times[vid])
        )
        gap = abs(times[tight.src] + d[tight.id] - times[vid])
        if gap > tol + 1e-6 * max(1.0, times[vid]):
            raise ValueError(
                f"no tight in-edge at vertex {vid} (best gap {gap:.3e}); "
                "schedule is not an ASAP schedule of this graph"
            )
        path.append(tight.id)
        vid = tight.src
    path.reverse()
    return path
