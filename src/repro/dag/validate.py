"""Extended structural validation of task graphs.

:meth:`TaskGraph.validate` covers the cheap invariants; this module adds
the deeper checks used by tests and by the tracer before handing a DAG to
the LP:

* per-rank program order forms a single chain from INIT to FINALIZE;
* every rank owns at least one compute edge (a rank with no work would make
  the power attribution of slack ill-defined);
* graph is weakly connected;
* message edges never connect two events of the same rank (those would be
  program-order artifacts with nonzero cost).
"""

from __future__ import annotations

import networkx as nx

from .graph import TaskGraph

__all__ = ["deep_validate", "to_networkx"]


def to_networkx(graph: TaskGraph) -> nx.MultiDiGraph:
    """Export to networkx for connectivity / path queries."""
    g = nx.MultiDiGraph()
    for v in graph.vertices:
        g.add_node(v.id, kind=v.kind.value, rank=v.rank)
    for e in graph.edges:
        g.add_edge(e.src, e.dst, key=e.id, kind=e.kind.value, rank=e.rank)
    return g


def deep_validate(graph: TaskGraph) -> None:
    """Raise ValueError on any structural defect beyond the basic checks."""
    graph.validate()
    nxg = to_networkx(graph)
    if graph.n_vertices > 1 and not nx.is_weakly_connected(nxg):
        raise ValueError("task graph is not weakly connected")

    ranks_with_work = {e.rank for e in graph.compute_edges()}
    missing = set(range(graph.n_ranks)) - ranks_with_work
    if missing:
        raise ValueError(f"ranks with no compute edges: {sorted(missing)}")

    for e in graph.message_edges():
        src_v, dst_v = graph.vertices[e.src], graph.vertices[e.dst]
        same_rank = (
            src_v.rank is not None
            and src_v.rank == dst_v.rank
            and e.duration_s > 0.0
        )
        if same_rank:
            raise ValueError(
                f"message edge {e.id} with nonzero duration connects two "
                f"events of rank {src_v.rank}"
            )

    _check_rank_chains(graph)


def _check_rank_chains(graph: TaskGraph) -> None:
    """Each rank's events must be totally ordered by the program-order edges.

    We verify that each rank's compute edges form a chain: the destination
    of one is connected (possibly through shared vertices) before the
    source of the next according to a topological order.
    """
    order = {vid: i for i, vid in enumerate(graph.topological_order())}
    for rank in range(graph.n_ranks):
        edges = graph.rank_edges(rank)
        for prev, nxt in zip(edges, edges[1:]):
            if order[prev.dst] > order[nxt.src]:
                raise ValueError(
                    f"rank {rank}: compute edges {prev.id} and {nxt.id} are "
                    "not program-ordered"
                )
