"""Deterministic process-pool fan-out for sweep-shaped experiments.

A cap sweep is embarrassingly parallel: every (workload, cap, seed) cell
is an independent, fully seeded computation.  :class:`ParallelRunner`
fans such cells out over a ``ProcessPoolExecutor`` while keeping the
*results in submission order* — the caller sees exactly the list a serial
loop would produce, so parallel and serial runs are interchangeable
byte-for-byte.

Reliability knobs: a per-task timeout (a wedged solver does not hang the
sweep) and bounded retries (a task that times out or raises is
resubmitted up to ``retries`` more times before the whole map fails).
With ``max_workers <= 1`` the runner degrades to a plain in-process loop
— no pickling, no subprocesses — which is also the benchmark harness's
measured path.

Telemetry: each worker runs its task under a fresh
:class:`~repro.exec.timing.Telemetry` and ships the snapshot back with
the result; the parent folds all snapshots into its own active telemetry,
so cache hit counters and phase times survive process boundaries.  Trace
events and solver audits travel the same way: when the parent has a
:class:`~repro.obs.recorder.TraceRecorder` or
:class:`~repro.obs.audit.SolveAudit` active, each worker activates fresh
ones, ships the batches back, and the parent folds them in *submission
order* — so a parallel run's trace and audit are identical to a serial
run's (modulo re-sequencing, which is itself deterministic).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import ExitStack
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Any, Callable, Iterable, Sequence

from ..obs.audit import SolveAudit, current_audit, use_audit
from ..obs.recorder import TraceRecorder, current_recorder, use_recorder
from .timing import Telemetry, current_telemetry, use_telemetry

__all__ = ["ParallelRunner", "ParallelExecutionError", "resolve_workers"]


class ParallelExecutionError(RuntimeError):
    """A task failed (or timed out) on every allowed attempt."""


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request: None -> 1, 0 -> all cores."""
    if workers is None:
        return 1
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _run_task(
    fn: Callable[[Any], Any],
    item: Any,
    want_trace: bool = False,
    want_audit: bool = False,
) -> tuple[Any, dict, list[dict] | None, dict | None]:
    """Worker-side wrapper: run one task under fresh observability state.

    Telemetry is always collected; a trace recorder and solve audit are
    activated only when the parent had them active (``want_*``), keeping
    the common path free of event-buffer overhead.
    """
    telemetry = Telemetry()
    recorder = TraceRecorder() if want_trace else None
    audit = SolveAudit() if want_audit else None
    with ExitStack() as stack:
        stack.enter_context(use_telemetry(telemetry))
        if recorder is not None:
            stack.enter_context(use_recorder(recorder))
        if audit is not None:
            stack.enter_context(use_audit(audit))
        result = fn(item)
    return (
        result,
        telemetry.to_dict(),
        recorder.snapshot() if recorder is not None else None,
        audit.to_dicts() if audit is not None else None,
    )


class ParallelRunner:
    """Ordered, fault-tolerant map over a process pool.

    Parameters
    ----------
    max_workers:
        Worker processes; ``<= 1`` runs serially in-process (``0`` means
        one per CPU core, via :func:`resolve_workers`).
    timeout_s:
        Per-task wall-clock budget.  None waits forever.  A timed-out
        task is retried; its abandoned worker finishes (or idles) in the
        background — ``ProcessPoolExecutor`` cannot interrupt a running
        call — so timeouts should be generous, a last line of defense.
    retries:
        Extra attempts per task after the first failure or timeout.
    """

    def __init__(
        self,
        max_workers: int | None = 1,
        timeout_s: float | None = None,
        retries: int = 1,
    ) -> None:
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.max_workers = resolve_workers(max_workers)
        self.timeout_s = timeout_s
        self.retries = retries

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every item; results in item order.

        ``fn`` and the items must be picklable when ``max_workers > 1``
        (``fn`` should be a module-level function).
        """
        items = list(items)
        if self.max_workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        return self._map_parallel(fn, items)

    def _map_parallel(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list:
        results: list[Any] = [None] * len(items)
        parent = current_telemetry()
        recorder = current_recorder()
        audit = current_audit()
        want_trace = recorder is not None
        want_audit = audit is not None
        n_workers = min(self.max_workers, len(items))
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = [
                pool.submit(_run_task, fn, item, want_trace, want_audit)
                for item in items
            ]
            for i in range(len(items)):
                attempt = 0
                while True:
                    try:
                        result, snapshot, batch, audit_snap = futures[i].result(
                            timeout=self.timeout_s
                        )
                        break
                    except FuturesTimeoutError as exc:
                        futures[i].cancel()
                        attempt = self._check_attempts(i, attempt, "timed out", exc)
                        futures[i] = pool.submit(
                            _run_task, fn, items[i], want_trace, want_audit
                        )
                    except Exception as exc:
                        attempt = self._check_attempts(i, attempt, "failed", exc)
                        futures[i] = pool.submit(
                            _run_task, fn, items[i], want_trace, want_audit
                        )
                results[i] = result
                # Fold worker observability in submission order: the loop
                # consumes futures by index, so the merged stream is stable
                # regardless of which worker finished first.
                if parent is not None:
                    parent.merge(snapshot)
                if recorder is not None and batch is not None:
                    recorder.extend(batch)
                if audit is not None and audit_snap is not None:
                    audit.extend(audit_snap)
        return results

    def _check_attempts(
        self, index: int, attempt: int, what: str, exc: BaseException
    ) -> int:
        attempt += 1
        if attempt > self.retries:
            raise ParallelExecutionError(
                f"task {index} {what} on all {attempt} attempt(s): {exc!r}"
            ) from exc
        return attempt
