"""Adagio-style slack reclamation (Rountree et al., ICS'09; paper §4.2).

Adagio observes, per recurring task, how much *slack* followed the task in
the previous iteration (time the rank idled in MPI before the next event
could complete) and slows the task just enough to absorb that slack —
freeing power without perturbing the critical path.  Conductor deploys it
as its first step; it is also usable standalone as an energy-saving policy.

Tasks recur across iterations, so the per-iteration position of a task on
its rank, :func:`task_key`, is the identity slack estimates attach to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.configuration import ConfigPoint
from ..simulator.engine import TaskRecord

__all__ = ["task_key", "SlackEstimator", "slowest_fitting_point"]


def task_key(record: TaskRecord, tasks_per_iteration: int) -> tuple[int, int]:
    """Recurring-task identity: (rank, position within the iteration)."""
    if tasks_per_iteration <= 0:
        raise ValueError("tasks_per_iteration must be positive")
    return (record.ref.rank, record.ref.seq % tasks_per_iteration)


@dataclass
class SlackEstimator:
    """Exponentially-smoothed per-task slack estimates from iteration records.

    ``update`` consumes one iteration's task records (all ranks) and
    refreshes the per-task slack: the gap between a task's end and the next
    task's start on the same rank, with the final task of each rank slacked
    against the iteration's global end (the Pcontrol barrier).
    """

    tasks_per_iteration: dict[int, int]
    smoothing: float = 0.5
    slack_s: dict[tuple[int, int], float] = field(default_factory=dict)
    duration_s: dict[tuple[int, int], float] = field(default_factory=dict)

    def update(
        self,
        records: list[TaskRecord],
        rng=None,
        noise: float = 0.0,
    ) -> None:
        """Refresh estimates from one iteration's records.

        ``noise`` models measurement error as an additive perturbation of
        each observed slack, proportional to the task duration — on a
        well-balanced application this is what makes Adagio occasionally
        slow a critical task (the paper's SP pathology).
        """
        if not records:
            return
        iteration_end = max(r.end_s for r in records)
        by_rank: dict[int, list[TaskRecord]] = {}
        for r in records:
            by_rank.setdefault(r.ref.rank, []).append(r)
        for rank, recs in by_rank.items():
            recs.sort(key=lambda r: r.start_s)
            tpi = self.tasks_per_iteration.get(rank, len(recs))
            for i, rec in enumerate(recs):
                nxt = recs[i + 1].start_s if i + 1 < len(recs) else iteration_end
                slack = max(0.0, nxt - rec.end_s)
                if rng is not None and noise > 0:
                    slack = max(
                        0.0, slack + rec.duration_s * float(rng.normal(0.0, noise))
                    )
                key = task_key(rec, tpi)
                old = self.slack_s.get(key)
                if old is None:
                    self.slack_s[key] = slack
                    self.duration_s[key] = rec.duration_s
                else:
                    a = self.smoothing
                    self.slack_s[key] = a * slack + (1 - a) * old
                    self.duration_s[key] = (
                        a * rec.duration_s + (1 - a) * self.duration_s[key]
                    )

    def allowed_duration(self, key: tuple[int, int], safety: float = 0.9) -> float | None:
        """Duration budget for a task: last duration plus reclaimable slack.

        ``safety`` < 1 leaves a guard band so noise does not push the task
        past the critical path.  None when the task has not been seen yet.
        """
        if key not in self.slack_s:
            return None
        return self.duration_s[key] + safety * self.slack_s[key]

    def slack_estimate(self, key: tuple[int, int]) -> float | None:
        """Smoothed slack for a task, or None before the first observation.

        Callers that know a faster achievable duration should budget
        ``fastest + safety * slack`` rather than :meth:`allowed_duration` —
        anchoring to the *last measured* duration ratchets: a task slowed
        yesterday measures no slack today and never speeds back up.
        """
        return self.slack_s.get(key)


def slowest_fitting_point(
    frontier: list[ConfigPoint], max_duration_s: float
) -> ConfigPoint:
    """Lowest-power frontier point not exceeding a duration budget.

    The frontier is sorted by ascending power / descending duration, so
    this is the *first* point whose duration fits; when even the fastest
    point misses the budget the fastest is returned (the task is critical —
    Adagio never slows it further).
    """
    if not frontier:
        raise ValueError("empty frontier")
    for point in frontier:
        if point.duration_s <= max_duration_s:
            return point
    return frontier[-1]
