"""Command-line entry point: regenerate any paper exhibit.

Usage (installed as ``repro-experiments``)::

    repro-experiments list
    repro-experiments fig1 fig8 fig9 ... table3 overheads headline
    repro-experiments all [--ranks 32]
    repro-experiments all --quick        # 8 ranks, small fig8 sweep

``--quick`` shrinks rank counts and sweep densities for smoke runs; the
full defaults match the measurement protocol recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..exec.options import ExecutionOptions, set_execution_options
from ..exec.timing import Telemetry, use_telemetry
from . import figures, tables

__all__ = ["main", "EXHIBITS"]


def _sensitivity(quick: bool):
    from .sensitivity import sensitivity_analysis

    if quick:
        return sensitivity_analysis(n_ranks=4, exponents=(2.0, 2.8),
                                    sigmas=(0.0, 0.08))
    return sensitivity_analysis()


def _fig8(quick: bool):
    if quick:
        return figures.figure8_flow_vs_fixed(n_caps=12, time_limit_s=20.0)
    return figures.figure8_flow_vs_fixed()


EXHIBITS = {
    "fig1": lambda q, n: figures.figure1_pareto_frontier(),
    "fig8": lambda q, n: _fig8(q),
    "fig9": lambda q, n: figures.figure9_lp_vs_static(n),
    "fig10": lambda q, n: figures.figure10_lp_vs_conductor(n),
    "fig11": lambda q, n: figures.figure11_comd(n),
    "fig12": lambda q, n: figures.figure12_comd_task_scatter(
        n_ranks=n, iterations=4 if q else 8
    ),
    "fig13": lambda q, n: figures.figure13_bt(n),
    "fig14": lambda q, n: figures.figure14_sp(n),
    "fig15": lambda q, n: figures.figure15_lulesh(n),
    "table3": lambda q, n: tables.table3_lulesh_task_characteristics(n_ranks=n),
    "overheads": lambda q, n: tables.overheads_summary(),
    "energy": lambda q, n: tables.energy_comparison(n_ranks=min(n, 8)),
    "mincap": lambda q, n: tables.minimum_cap_table(
        n_ranks=min(n, 8), iterations=2 if q else 3
    ),
    "sensitivity": lambda q, n: _sensitivity(q),
    "headline": lambda q, n: figures.headline_summary(n),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "exhibits", nargs="*", default=["all"],
        help="exhibit names (see 'list'), or 'all'",
    )
    parser.add_argument("--ranks", type=int, default=32,
                        help="MPI ranks / sockets (default 32, as in the paper)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps for a fast smoke run")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write each exhibit's text to DIR/<name>.txt")
    parser.add_argument("--svg", metavar="DIR", default=None,
                        help="also render figure exhibits to DIR/<name>.svg")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for sweep-shaped exhibits "
                             "(1 = serial, 0 = one per CPU core)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed solver cache directory "
                             "(warm entries skip LP solves and replays)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir: solve everything fresh")
    parser.add_argument("--timings", action="store_true",
                        help="print per-phase timings and cache counters")
    parser.add_argument("--timings-json", metavar="FILE", default=None,
                        help="also write the timing telemetry as JSON")
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")

    set_execution_options(ExecutionOptions(
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    ))

    if args.exhibits == ["list"]:
        for name in EXHIBITS:
            print(name)
        return 0

    telemetry = Telemetry()

    def emit_timings() -> None:
        if args.timings:
            print(telemetry.summary())
        if args.timings_json:
            out = Path(args.timings_json)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(telemetry.to_json() + "\n")

    if args.exhibits and args.exhibits[0] == "verify-results":
        if len(args.exhibits) < 2:
            parser.error("verify-results needs a reference directory")
        from .regression import verify_reference_results

        ref_dir = args.exhibits[1]
        names = args.exhibits[2:] or [
            n for n in EXHIBITS if (Path(ref_dir) / f"{n}.txt").exists()
        ]
        with use_telemetry(telemetry):
            results = {
                n: EXHIBITS[n](args.quick, args.ranks) for n in names
            }
        report = verify_reference_results(ref_dir, results)
        print(report.summary())
        emit_timings()
        return 0 if report.ok else 1

    names = list(EXHIBITS) if args.exhibits in (["all"], []) else args.exhibits
    unknown = [n for n in names if n not in EXHIBITS]
    if unknown:
        parser.error(f"unknown exhibits: {unknown}; try 'list'")

    ranks = 8 if args.quick and args.ranks == 32 else args.ranks
    save_dir = None
    if args.save:
        save_dir = Path(args.save)
        save_dir.mkdir(parents=True, exist_ok=True)
    svg_dir = None
    if args.svg:
        svg_dir = Path(args.svg)
        svg_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        t0 = time.time()
        with use_telemetry(telemetry):
            result = EXHIBITS[name](args.quick, ranks)
        text = result.render()
        print(text)
        print(f"[{name} regenerated in {time.time() - t0:.1f}s]")
        print()
        if save_dir is not None:
            (save_dir / f"{name}.txt").write_text(text + "\n")
        if svg_dir is not None:
            from .figures_svg import exhibit_to_svg

            svg = exhibit_to_svg(result)
            if svg is not None:
                (svg_dir / f"{name}.svg").write_text(svg)
    emit_timings()
    return 0


if __name__ == "__main__":
    sys.exit(main())
