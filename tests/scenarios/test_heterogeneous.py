"""Heterogeneous nodes through the scenario layer.

Two contracts guard the refactor:

* **Golden equivalence** — the legacy homogeneous pipeline and the same
  machine expressed as a one-device :class:`NodeSpec` produce bit-identical
  traces, LP schedules, and engine runs.  The typed-device layer is a
  strict generalisation, not a reimplementation.
* **Cache-key separation** — a heterogeneous spec can never collide with a
  legacy spec in hashes, cell keys, or manifests, while legacy documents
  stay byte-for-byte what they were before nodes existed.
"""

from repro.core.fixed_order_lp import solve_fixed_order_lp
from repro.core.model import build_problem_instance
from repro.core.serialize import schedule_to_dict
from repro.exec.keys import scenario_cell_key
from repro.machine.device import LEGACY_NODE, get_node, rank_nodes, single_socket_node
from repro.machine.frontiers import FrontierStore, NodeFrontierStore
from repro.machine.variability import make_power_models
from repro.runtime.conductor import ConductorPolicy
from repro.runtime.static import StaticPolicy
from repro.scenarios.run import run_scenarios
from repro.scenarios.spec import SCENARIO_LAYER_VERSION, PolicySpec, ScenarioSpec
from repro.simulator.engine import Engine
from repro.simulator.trace import trace_application
from repro.workloads import WorkloadSpec, make_comd

N_RANKS = 4
CAP_W = 50.0 * N_RANKS


def _pipelines():
    """The legacy pipeline and its wrapped one-device-node twin."""
    app = make_comd(WorkloadSpec(n_ranks=N_RANKS, iterations=3))
    pm = make_power_models(N_RANKS, efficiency_seed=42)

    legacy_store = FrontierStore(pm)
    legacy_trace = trace_application(app, pm, frontier_store=legacy_store)
    legacy_engine = Engine(pm)

    nodes = rank_nodes(single_socket_node(), pm)
    node_store = NodeFrontierStore(nodes)
    node_trace = trace_application(app, pm, frontier_store=node_store)
    node_engine = Engine(pm, nodes=nodes)

    return app, pm, (legacy_trace, legacy_engine), (node_trace, node_engine)


class TestGoldenEquivalence:
    """A one-device node is the legacy machine, bit for bit."""

    def test_traces_are_identical(self):
        _, _, (legacy_trace, _), (node_trace, _) = _pipelines()
        assert node_trace.pareto == legacy_trace.pareto
        assert node_trace.frontiers == legacy_trace.frontiers
        assert node_trace.task_edges == legacy_trace.task_edges
        assert not node_trace.uses_devices  # the legacy empty device id

    def test_lp_schedules_are_identical(self):
        _, _, (legacy_trace, _), (node_trace, _) = _pipelines()
        a = solve_fixed_order_lp(legacy_trace, CAP_W)
        b = solve_fixed_order_lp(node_trace, CAP_W)
        assert a.feasible and b.feasible
        assert a.makespan_s == b.makespan_s
        assert schedule_to_dict(a.schedule) == schedule_to_dict(b.schedule)

    def test_instances_are_identical(self):
        _, _, (legacy_trace, _), (node_trace, _) = _pipelines()
        a = build_problem_instance(legacy_trace)
        b = build_problem_instance(node_trace)
        for family in ("convex", "pareto"):
            mine = getattr(a, family)
            twin = getattr(b, family)
            assert {e: f.points for e, f in mine.items()} == {
                e: f.points for e, f in twin.items()
            }, family

    def test_static_runs_are_identical(self):
        app, pm, (_, legacy_engine), (_, node_engine) = _pipelines()
        a = legacy_engine.run(app, StaticPolicy(pm, CAP_W))
        b = node_engine.run(app, StaticPolicy(pm, CAP_W))
        assert a.makespan_s == b.makespan_s
        assert a.records == b.records

    def test_conductor_runs_are_identical(self):
        app, pm, (legacy_trace, legacy_engine), (node_trace, node_engine) = (
            _pipelines()
        )
        del legacy_trace, node_trace
        legacy_store = FrontierStore(pm)
        node_store = NodeFrontierStore(rank_nodes(single_socket_node(), pm))
        a = legacy_engine.run(
            app, ConductorPolicy(pm, CAP_W, app, frontier_store=legacy_store)
        )
        b = node_engine.run(
            app, ConductorPolicy(pm, CAP_W, app, frontier_store=node_store)
        )
        assert a.makespan_s == b.makespan_s
        assert a.records == b.records


def _legacy_spec(**overrides) -> ScenarioSpec:
    kwargs = dict(
        benchmark="phased-offload",
        caps_per_socket_w=(50.0,),
        policies=(PolicySpec("static"), PolicySpec("lp")),
        n_ranks=2,
        run_iterations=6,
        lp_iterations=2,
        discard_iterations=2,
        steady_window=3,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestCacheKeySeparation:
    """Satellite: heterogeneous and legacy cells can never collide."""

    def test_legacy_doc_omits_node(self):
        doc = _legacy_spec().to_doc()
        assert "node" not in doc  # pre-node documents stay byte-identical

    def test_heterogeneous_doc_carries_node(self):
        doc = _legacy_spec(node="cpu-gpu").to_doc()
        assert doc["node"] == "cpu-gpu"

    def test_node_round_trips(self):
        spec = _legacy_spec(node="cpu-gpu")
        assert ScenarioSpec.from_doc(spec.to_doc()) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        # A node-less document resolves to the legacy machine.
        assert ScenarioSpec.from_doc(_legacy_spec().to_doc()).node == LEGACY_NODE

    def test_hashes_differ_between_nodes(self):
        legacy = _legacy_spec()
        het = _legacy_spec(node="cpu-gpu")
        assert legacy.spec_hash() != het.spec_hash()
        assert legacy.cell_hash() != het.cell_hash()

    def test_cell_keys_differ_between_nodes(self):
        legacy = _legacy_spec()
        het = _legacy_spec(node="cpu-gpu")
        assert scenario_cell_key(
            legacy.cell_hash(), 50.0, SCENARIO_LAYER_VERSION
        ) != scenario_cell_key(het.cell_hash(), 50.0, SCENARIO_LAYER_VERSION)


class TestHeterogeneousScenarioRuns:
    """The power-shifting exhibit's machinery, end to end but small."""

    def test_lp_split_between_static_and_lp(self):
        spec = _legacy_spec(
            node="cpu-gpu",
            policies=(
                PolicySpec("static"),
                PolicySpec("lp-split", config={"cpu_shares": [0.4, 0.6, 0.8]}),
                PolicySpec("lp"),
            ),
        )
        cell = run_scenarios(spec).cells[0]
        assert cell.schedulable
        lp = cell.outcomes["lp"].time_s
        split = cell.outcomes["lp-split"].time_s
        assert lp is not None and split is not None
        # Any static split restricts the LP's feasible region.
        assert lp <= split + 1e-9
        assert cell.outcomes["lp-split"].extra["best_cpu_share"] in (
            0.4, 0.6, 0.8,
        )

    def test_lp_split_requires_heterogeneous_node(self):
        import pytest

        spec = _legacy_spec(policies=(PolicySpec("lp-split"),))
        with pytest.raises(ValueError, match="heterogeneous node"):
            run_scenarios(spec)

    def test_same_spec_different_node_changes_results(self):
        legacy = run_scenarios(_legacy_spec()).cells[0]
        het = run_scenarios(_legacy_spec(node="cpu-gpu")).cells[0]
        # The GPU opens a faster frontier for the offload phase.
        assert het.outcomes["lp"].time_s < legacy.outcomes["lp"].time_s

    def test_cpu_gpu_node_is_in_registry_default(self):
        assert get_node("cpu-gpu").is_heterogeneous
