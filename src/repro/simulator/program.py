"""Per-rank MPI programs: the op-level representation of an application.

An :class:`Application` is one op list per rank.  The op vocabulary mirrors
the MPI subset the paper's benchmarks use — computation between calls,
blocking and nonblocking point-to-point, collectives, and ``MPI_Pcontrol``
iteration markers.  Programs are *deterministic*: the DAG the tracer emits
depends only on the op lists, so the same program can be (a) executed by
the discrete-event engine under any power policy and (b) statically
translated into the LP's task graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..machine.performance import TaskKernel

__all__ = [
    "ComputeOp",
    "SendOp",
    "RecvOp",
    "IsendOp",
    "IrecvOp",
    "WaitOp",
    "CollectiveOp",
    "PcontrolOp",
    "Op",
    "RankProgram",
    "Application",
    "TaskRef",
]


@dataclass(frozen=True)
class ComputeOp:
    """Computation between two MPI calls; one DAG task edge."""

    kernel: TaskKernel
    iteration: int = -1
    label: str = ""


@dataclass(frozen=True)
class SendOp:
    """Blocking (eager) send: deposits the message and continues."""

    dst: int
    size_bytes: int
    tag: int = 0
    iteration: int = -1


@dataclass(frozen=True)
class RecvOp:
    """Blocking receive: completes at max(local clock, message arrival)."""

    src: int
    tag: int = 0
    iteration: int = -1


@dataclass(frozen=True)
class IsendOp:
    """Nonblocking send initiation; completion owned by a later WaitOp."""

    dst: int
    size_bytes: int
    request: int
    tag: int = 0
    iteration: int = -1


@dataclass(frozen=True)
class IrecvOp:
    """Nonblocking receive post; message consumed by the matching WaitOp."""

    src: int
    request: int
    tag: int = 0
    iteration: int = -1


@dataclass(frozen=True)
class WaitOp:
    """Completion of a nonblocking request."""

    request: int
    iteration: int = -1


@dataclass(frozen=True)
class CollectiveOp:
    """Synchronizing collective (allreduce/barrier/bcast...).

    ``size_bytes`` drives wire time through the network model's collective
    cost function; participants default to every rank.  All ranks must post
    their collectives in the same order (standard MPI requirement).
    """

    kind: str = "allreduce"
    size_bytes: int = 8
    participants: tuple[int, ...] | None = None
    iteration: int = -1


@dataclass(frozen=True)
class PcontrolOp:
    """Iteration boundary: a zero-byte barrier plus a runtime hook.

    Conductor performs its synchronous power-reallocation decisions here
    (paper §4.2); the tracer uses it to attribute tasks to iterations.
    """

    iteration: int


Op = Union[
    ComputeOp, SendOp, RecvOp, IsendOp, IrecvOp, WaitOp, CollectiveOp, PcontrolOp
]

RankProgram = list


@dataclass(frozen=True)
class TaskRef:
    """Stable identity of one compute task: (rank, per-rank sequence index).

    The engine, the tracer, the LP schedule, and the replay policy all key
    tasks this way, so a schedule derived from a traced DAG can be replayed
    against the original program without any other correlation state.
    """

    rank: int
    seq: int


@dataclass
class Application:
    """A complete multi-rank program plus descriptive metadata."""

    name: str
    programs: list[RankProgram]
    iterations: int = 1
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.programs:
            raise ValueError("application needs at least one rank program")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")

    @property
    def n_ranks(self) -> int:
        return len(self.programs)

    def compute_ops(self, rank: int) -> list[ComputeOp]:
        """A rank's compute ops in program (= task sequence) order."""
        return [op for op in self.programs[rank] if isinstance(op, ComputeOp)]

    def task_kernel(self, ref: TaskRef) -> TaskKernel:
        """The kernel of the task identified by ``ref``."""
        ops = self.compute_ops(ref.rank)
        if not (0 <= ref.seq < len(ops)):
            raise KeyError(f"no task {ref} (rank has {len(ops)} tasks)")
        return ops[ref.seq].kernel

    def n_tasks(self) -> int:
        """Total compute tasks across all ranks."""
        return sum(
            1
            for prog in self.programs
            for op in prog
            if isinstance(op, ComputeOp)
        )

    def validate(self) -> None:
        """Cheap sanity checks: collectives aligned, requests well-formed."""
        coll_counts = {
            r: sum(1 for op in prog if isinstance(op, (CollectiveOp, PcontrolOp)))
            for r, prog in enumerate(self.programs)
        }
        if len(set(coll_counts.values())) > 1:
            raise ValueError(
                f"ranks post different numbers of collectives: {coll_counts}"
            )
        for r, prog in enumerate(self.programs):
            pending: set[int] = set()
            for op in prog:
                if isinstance(op, (IsendOp, IrecvOp)):
                    if op.request in pending:
                        raise ValueError(
                            f"rank {r}: request {op.request} reused before wait"
                        )
                    pending.add(op.request)
                elif isinstance(op, WaitOp):
                    if op.request not in pending:
                        raise ValueError(
                            f"rank {r}: wait on unknown request {op.request}"
                        )
                    pending.discard(op.request)
            if pending:
                raise ValueError(f"rank {r}: unwaited requests {sorted(pending)}")
