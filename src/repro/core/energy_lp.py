"""Energy-bounding LP — the related-work comparator (Rountree et al., SC'07).

The paper positions itself against prior LP work that *minimizes energy
subject to (near-)unchanged execution time* on fully power-provisioned
systems (§7: "the most related work to ours...").  This module implements
that formulation on the same trace substrate so the two objectives can be
compared directly:

* **This formulation**: minimize total energy, subject to
  ``makespan <= (1 + slowdown) * T_unconstrained`` — no power cap at all
  (it *requires a system with fully provisioned worst-case power*, which
  the paper points out future systems will not have).
* **The paper's LP**: minimize makespan subject to an instantaneous
  job-level power cap.

The contrast is the ablation `benchmarks/test_bench_ablations.py` runs:
energy-optimal schedules routinely *violate* realistic power caps, while
power-capped schedules burn more energy than the energy optimum — the
paper's argument for why power-constrained optimization is a genuinely
different problem.

Both formulations now compile from the shared :mod:`.model` IR and decode
solutions through the public :func:`~.model.extract_schedule` — the ~80%
structural overlap (vertex times, configuration simplices, precedence)
lives in :func:`~.model.base_model` exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulator.trace import Trace
from .model import (
    CAP_ROW_TAG,
    CompiledModel,
    ProblemInstance,
    base_model,
    build_problem_instance,
    extract_schedule,
)
from .schedule import PowerSchedule
from .solver import LpSolution, LpStatus

__all__ = ["EnergyLpResult", "solve_energy_lp", "compile_energy"]

#: Tag on the slowdown-budget row: re-solve a frozen energy model under a
#: different time budget by overriding this row's RHS.
BUDGET_ROW_TAG = "budget"


@dataclass
class EnergyLpResult:
    """Energy-minimization outcome."""

    schedule: PowerSchedule | None
    solution: LpSolution
    energy_j: float | None
    time_budget_s: float

    @property
    def feasible(self) -> bool:
        return self.schedule is not None

    @property
    def makespan_s(self) -> float:
        if self.schedule is None:
            raise RuntimeError("energy LP infeasible")
        return self.schedule.objective_s


def compile_energy(
    instance: ProblemInstance,
    slowdown: float = 0.0,
    cap_w: float | None = None,
    deadline_s: float | None = None,
) -> CompiledModel:
    """Compile the energy-bounding LP from the shared IR.

    Minimizes ``sum c_ij * (d_ij * p_ij)`` subject to the base rows plus
    ``v_finalize <= (1 + slowdown) * deadline`` (the budget row, tagged
    for parametric slowdown sweeps).  The deadline defaults to the
    power-unconstrained optimum; pass ``deadline_s`` to anchor it
    elsewhere — under a cap the natural anchor is the *capped*
    fixed-order optimum, since no cap-respecting schedule can reach the
    unconstrained makespan.

    ``cap_w``, when given, additionally bounds instantaneous power at
    every event with the same rows the fixed-order LP uses (tagged
    :data:`~.model.CAP_ROW_TAG`): min-energy subject to deadline *and*
    cap, the capped comparator the scenario layer's ``energy-lp`` bound
    policy sweeps.  ``None`` keeps the classic fully-provisioned
    formulation.
    """
    if slowdown < 0:
        raise ValueError(f"slowdown must be >= 0, got {slowdown}")
    if cap_w is not None and cap_w <= 0:
        raise ValueError(f"cap must be positive, got {cap_w}")
    if deadline_s is not None and deadline_s <= 0:
        raise ValueError(f"deadline must be positive, got {deadline_s}")
    anchor = (
        deadline_s
        if deadline_s is not None
        else instance.unconstrained_makespan_s()
    )
    budget = (1.0 + slowdown) * anchor

    lp, v_idx, c_idx = base_model(
        instance, name=f"energy-{instance.trace.app.name}"
    )
    # Task energy is linear in the fractions: sum c_ij * (d_ij * p_ij).
    objective: dict[int, float] = {}
    for edge_id, cols in c_idx.items():
        frontier = instance.convex[edge_id]
        for col, d, p in zip(cols, frontier.durations, frontier.powers):
            objective[col] = float(d * p)

    # The performance guarantee replacing the paper's power constraint.
    lp.add_le(
        {v_idx[instance.fin_id]: 1.0},
        budget,
        label="slowdown-budget",
        tag=BUDGET_ROW_TAG,
    )

    if cap_w is not None:
        # Event power (fixed-order eqs. 8, 10-11): identical activity-set
        # dedup to compile_fixed_order, so the capped energy LP constrains
        # exactly the feasible region the makespan LP does.
        events = instance.events
        seen_sets: set[frozenset[int]] = set()
        for group in events.groups:
            act = frozenset(events.active[group[0]])
            if not act or act in seen_sets:
                continue
            seen_sets.add(act)
            terms: dict[int, float] = {}
            for edge_id in act:
                for col, power in zip(
                    c_idx[edge_id], instance.convex[edge_id].powers
                ):
                    terms[col] = terms.get(col, 0.0) + power
            lp.add_le(terms, cap_w, label="power", tag=CAP_ROW_TAG)

    lp.set_objective(objective)

    # cap_w is a required positive field of PowerSchedule; when the
    # formulation is uncapped record the budgetless marker of "fully
    # provisioned" as +inf-like.
    return CompiledModel(
        instance=instance,
        lp=lp,
        v_idx=v_idx,
        c_idx=c_idx,
        frontiers=instance.convex,
        formulation="energy-lp",
        cap_w=float(np.finfo(float).max) if cap_w is None else float(cap_w),
        solver_info={
            "formulation": "energy-lp",
            "time_budget_s": budget,
            "cap_w": None if cap_w is None else float(cap_w),
        },
    )


def solve_energy_lp(
    trace: Trace,
    slowdown: float = 0.0,
    time_limit_s: float | None = None,
    instance: ProblemInstance | None = None,
    cap_w: float | None = None,
    deadline_s: float | None = None,
) -> EnergyLpResult:
    """Minimize total task energy subject to a bounded slowdown.

    Parameters
    ----------
    slowdown:
        Allowed relative makespan increase over the deadline anchor (0.0
        reproduces the "save energy without increasing execution time"
        setting; 0.05 allows 5%).
    instance:
        A prebuilt :class:`ProblemInstance` for this trace (built once,
        shared across formulations and sweeps).
    cap_w:
        Optional instantaneous job-level power cap (total watts).  When
        given the optimum is min-energy subject to deadline *and* cap;
        a cap tight enough to make the deadline unreachable yields an
        infeasible result rather than an error.
    deadline_s:
        Deadline anchor; defaults to the power-unconstrained optimum.
        Capped callers should anchor to the capped fixed-order optimum
        (see :func:`compile_energy`).
    """
    if slowdown < 0:
        raise ValueError(f"slowdown must be >= 0, got {slowdown}")
    if instance is None:
        instance = build_problem_instance(trace)
    compiled = compile_energy(
        instance, slowdown=slowdown, cap_w=cap_w, deadline_s=deadline_s
    )
    budget = compiled.solver_info["time_budget_s"]

    solution = compiled.lp.solve(time_limit_s=time_limit_s)
    if solution.status is not LpStatus.OPTIMAL:
        return EnergyLpResult(schedule=None, solution=solution,
                              energy_j=None, time_budget_s=budget)
    schedule = extract_schedule(compiled, solution)
    return EnergyLpResult(
        schedule=schedule, solution=solution,
        energy_j=schedule.total_energy_j(), time_budget_s=budget,
    )
