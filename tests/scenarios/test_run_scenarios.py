"""The N-way executor: smoke over every runtime, caching, parallelism."""

import pytest

from repro.exec.cache import SolverCache
from repro.exec.keys import scenario_cell_key
from repro.machine.variability import make_power_models
from repro.obs.recorder import TraceRecorder, use_recorder
from repro.scenarios.run import (
    policy_iteration_time,
    run_scenario_cell,
    run_scenarios,
)
from repro.scenarios.spec import (
    SCENARIO_LAYER_VERSION,
    PolicySpec,
    ScenarioSpec,
)
from repro.workloads import WorkloadSpec, make_comd

ALL_FIVE = (
    PolicySpec("static"),
    PolicySpec("conductor"),
    PolicySpec("adagio"),
    PolicySpec("selection-only"),
    PolicySpec("lp"),
)


def small_spec(policies=ALL_FIVE, caps=(40.0, 60.0), **overrides) -> ScenarioSpec:
    kwargs = dict(
        benchmark="synthetic",
        caps_per_socket_w=caps,
        policies=policies,
        n_ranks=4,
        run_iterations=8,
        lp_iterations=2,
        discard_iterations=2,
        steady_window=4,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestNWaySmoke:
    def test_all_five_policies_on_synthetic(self):
        result = run_scenarios(small_spec())
        assert result.policy_names() == [
            "static", "conductor", "adagio", "selection-only", "lp",
        ]
        assert len(result.cells) == 2
        for cell in result.cells:
            assert cell.schedulable
            for name, outcome in cell.outcomes.items():
                assert outcome.time_s is not None and outcome.time_s > 0, name

    def test_outcome_metadata(self):
        cell = run_scenarios(small_spec()).cells[0]
        assert cell.outcomes["lp"].kind == "bound"
        assert cell.outcomes["static"].kind == "runtime"
        assert "reallocs" in cell.outcomes["conductor"].extra
        # The LP bound is at least as fast as every measured runtime.
        lp = cell.outcomes["lp"].time_s
        for name in ("static", "conductor", "selection-only"):
            assert lp <= cell.outcomes[name].time_s + 1e-9, name

    def test_series_and_cell_at(self):
        result = run_scenarios(small_spec())
        assert len(result.series("adagio")) == 2
        assert result.cell_at(40.0).cap_per_socket_w == 40.0
        with pytest.raises(KeyError):
            result.cell_at(99.0)

    def test_duplicate_policy_distinct_configs(self):
        spec = small_spec(policies=(
            PolicySpec("conductor", name="slow", config={"realloc_period": 8}),
            PolicySpec("conductor", name="fast", config={"realloc_period": 2}),
        ))
        cell = run_scenarios(spec).cells[0]
        assert set(cell.outcomes) == {"slow", "fast"}
        assert (
            cell.outcomes["fast"].extra["reallocs"]
            >= cell.outcomes["slow"].extra["reallocs"]
        )

    def test_include_discrete_extra(self):
        spec = small_spec(policies=(
            PolicySpec("lp", config={"include_discrete": True}),
        ))
        outcome = run_scenarios(spec).cells[0].outcomes["lp"]
        assert outcome.extra["feasible"] is True
        assert outcome.extra["discrete_s"] >= outcome.time_s - 1e-9

    def test_unschedulable_cap_marks_all_policies(self):
        spec = small_spec(benchmark="sp", caps=(10.0,), n_ranks=4)
        cell = run_scenarios(spec).cells[0]
        assert not cell.schedulable
        assert all(o.time_s is None for o in cell.outcomes.values())

    def test_unknown_policy_fails_fast(self):
        spec = small_spec(policies=(PolicySpec("magic"),))
        with pytest.raises(KeyError, match="registered"):
            run_scenarios(spec)

    def test_trace_scopes_per_policy_instance(self):
        rec = TraceRecorder()
        spec = small_spec(caps=(40.0,))
        with use_recorder(rec):
            run_scenarios(spec)
        runs = {e["run"] for e in rec.snapshot()}
        for label in spec.policy_labels():
            assert f"{label} synthetic cap=40W" in runs, label


ENERGY_WAY = (
    PolicySpec("static"),
    PolicySpec("dvfs-energy"),
    PolicySpec("config-search"),
    PolicySpec("lp"),
    PolicySpec("energy-lp"),
)


class TestEnergyOutcomes:
    def test_every_outcome_carries_per_iteration_energy(self):
        result = run_scenarios(small_spec(policies=ENERGY_WAY))
        for cell in result.cells:
            for name, outcome in cell.outcomes.items():
                assert outcome.energy_j is not None, name
                assert outcome.energy_j > 0, name

    def test_payload_round_trip_preserves_energy(self):
        from repro.scenarios.run import PolicyOutcome

        cell = run_scenarios(small_spec(policies=ENERGY_WAY)).cells[0]
        for name, outcome in cell.outcomes.items():
            back = PolicyOutcome.from_payload(name, outcome.to_payload())
            assert back.energy_j == outcome.energy_j
        # Pre-energy payloads (no key) rehydrate to None, never KeyError.
        doc = cell.outcomes["lp"].to_payload()
        del doc["energy_j"]
        assert PolicyOutcome.from_payload("lp", doc).energy_j is None

    def test_energy_lp_bound_dominates_time_lp_at_every_cap(self):
        """The frontier invariant (docs/scenarios.md): the time-optimal
        capped schedule is feasible for the capped energy LP at the same
        deadline, so the energy-lp bound never uses more energy — and at
        the same (anchored) time it is Pareto-dominated by nothing."""
        result = run_scenarios(small_spec(policies=ENERGY_WAY))
        for cell in result.cells:
            lp, elp = cell.outcomes["lp"], cell.outcomes["energy-lp"]
            assert elp.energy_j <= lp.energy_j * (1 + 1e-9)
            assert elp.time_s == pytest.approx(lp.time_s)

    def test_uncapped_energy_lp_config(self):
        spec = small_spec(policies=(
            PolicySpec("energy-lp", name="capped"),
            PolicySpec("energy-lp", name="free", config={"capped": False}),
        ))
        cell = run_scenarios(spec).cells[0]
        # Uncapped: deadline anchors at the unconstrained makespan, which
        # is faster than any capped optimum, while the capped variant may
        # spend less energy only via its longer deadline.
        assert cell.outcomes["free"].time_s <= cell.outcomes["capped"].time_s
        assert cell.outcomes["free"].extra["feasible"]

    def test_unschedulable_cap_yields_no_energy(self):
        # SP declares a 40 W/socket floor; below it the cell is skipped.
        result = run_scenarios(
            small_spec(
                policies=ENERGY_WAY[:1] + ENERGY_WAY[-1:],
                caps=(10.0,),
                benchmark="sp",
            )
        )
        cell = result.cells[0]
        assert not cell.schedulable
        for outcome in cell.outcomes.values():
            assert outcome.time_s is None and outcome.energy_j is None

    def test_warm_cell_preserves_energy(self, tmp_path):
        cache = SolverCache(tmp_path)
        spec = small_spec(policies=ENERGY_WAY, caps=(40.0,))
        cold = run_scenarios(spec, cache=cache)
        warm = run_scenarios(spec, cache=cache)
        for name in spec.policy_labels():
            assert (
                warm.cells[0].outcomes[name].energy_j
                == cold.cells[0].outcomes[name].energy_j
            )

    def test_cell_energy_metric_is_deterministic(self):
        from repro.obs.metrics import Metrics, use_metrics

        spec = small_spec(policies=ENERGY_WAY[:2], caps=(40.0,))
        m = Metrics()
        with use_metrics(m):
            run_scenarios(spec)
        hist = m.to_dict(deterministic_only=True)["histograms"]["cell.energy_j"]
        assert hist["count"] == 2  # one observation per outcome
        assert all(isinstance(v, int) for v in (hist["sum"], hist["min"]))


class TestCellCaching:
    def test_warm_cell_is_byte_identical(self, tmp_path):
        cache = SolverCache(tmp_path)
        spec = small_spec()
        cold = run_scenarios(spec, cache=cache)
        warm = run_scenarios(spec, cache=cache)
        for a, b in zip(cold.cells, warm.cells):
            assert a.schedulable == b.schedulable
            for name in spec.policy_labels():
                assert a.outcomes[name].time_s == b.outcomes[name].time_s
                assert a.outcomes[name].extra == b.outcomes[name].extra

    def test_sweep_and_single_cap_share_cells(self, tmp_path):
        cache = SolverCache(tmp_path)
        spec = small_spec(caps=(40.0, 60.0))
        run_scenarios(spec, cache=cache)
        hits_before = cache.hits
        single = ScenarioSpec.from_doc(
            {**spec.to_doc(), "caps_per_socket_w": [60.0]}
        )
        run_scenario_cell(single, 60.0, cache=cache)
        assert cache.hits > hits_before  # warm despite the different grid

    def test_different_policy_lists_do_not_collide(self, tmp_path):
        cache = SolverCache(tmp_path)
        three = small_spec(policies=ALL_FIVE[:3], caps=(40.0,))
        five = small_spec(policies=ALL_FIVE, caps=(40.0,))
        run_scenarios(three, cache=cache)
        cell = run_scenario_cell(five, 40.0, cache=cache)
        assert set(cell.outcomes) == set(five.policy_labels())

    def test_stale_payload_recomputed_not_mismapped(self, tmp_path):
        cache = SolverCache(tmp_path)
        spec = small_spec(caps=(40.0,))
        key = scenario_cell_key(
            spec.cell_hash(), 40.0, SCENARIO_LAYER_VERSION
        )
        # A pre-scenario-layer payload under the very same key (e.g. a
        # version rollback) must miss, not be mis-mapped into outcomes.
        cache.put(key, {"static_s": 1.0, "conductor_s": 2.0, "lp_s": 0.5})
        cell = run_scenario_cell(spec, 40.0, cache=cache)
        assert set(cell.outcomes) == set(spec.policy_labels())
        assert cell.outcomes["static"].time_s not in (1.0, 2.0, 0.5)

    def test_layer_version_namespaces_keys(self):
        a = scenario_cell_key("abc", 40.0, 1)
        b = scenario_cell_key("abc", 40.0, 2)
        assert a != b


class TestWithinRunDedup:
    def test_duplicate_caps_compute_once_and_fan_out(self):
        from repro.exec.timing import Telemetry, use_telemetry
        from repro.obs.metrics import Metrics, use_metrics

        spec = small_spec(
            policies=ALL_FIVE[:2], caps=(40.0, 60.0, 40.0, 40.0)
        )
        telemetry, metrics = Telemetry(), Metrics()
        with use_telemetry(telemetry), use_metrics(metrics):
            result = run_scenarios(spec)
        assert telemetry.counter("cells.deduped") == 2
        assert metrics.to_dict()["counters"]["cells.deduped"] == 2
        # The result still fans out to every grid occurrence...
        assert [c.cap_per_socket_w for c in result.cells] == [
            40.0, 60.0, 40.0, 40.0,
        ]
        # ...and the duplicates are the *same* computed cell.
        assert result.cells[0] is result.cells[2] is result.cells[3]

    def test_dedup_matches_a_unique_grid(self):
        spec_dup = small_spec(policies=ALL_FIVE[:2], caps=(40.0, 60.0, 40.0))
        spec_uniq = small_spec(policies=ALL_FIVE[:2], caps=(40.0, 60.0))
        dup = run_scenarios(spec_dup)
        uniq = run_scenarios(spec_uniq)
        for cap in (40.0, 60.0):
            a, b = dup.cell_at(cap), uniq.cell_at(cap)
            for name in spec_uniq.policy_labels():
                assert a.outcomes[name].time_s == b.outcomes[name].time_s

    def test_progress_still_reaches_the_full_total(self):
        from repro.obs.progress import ProgressReporter

        spec = small_spec(policies=ALL_FIVE[:2], caps=(40.0, 60.0, 40.0))
        progress = ProgressReporter(total=len(spec.caps_per_socket_w))
        run_scenarios(spec, progress=progress)
        assert progress.done == 3 and progress.failed == 0


class TestParallel:
    def test_parallel_matches_serial_exactly(self, tmp_path):
        spec = small_spec(caps=(35.0, 45.0, 55.0))
        serial = run_scenarios(spec, workers=1)
        parallel = run_scenarios(spec, workers=2)
        for a, b in zip(serial.cells, parallel.cells):
            assert a.cap_per_socket_w == b.cap_per_socket_w
            for name in spec.policy_labels():
                assert a.outcomes[name].time_s == b.outcomes[name].time_s
                assert a.outcomes[name].extra == b.outcomes[name].extra

    def test_parallel_with_cache(self, tmp_path):
        cache = SolverCache(tmp_path)
        spec = small_spec(caps=(35.0, 45.0))
        cold = run_scenarios(spec, workers=2, cache=cache)
        warm = run_scenarios(spec, workers=1, cache=cache)
        for a, b in zip(cold.cells, warm.cells):
            for name in spec.policy_labels():
                assert a.outcomes[name].time_s == b.outcomes[name].time_s


class TestPolicyIterationTime:
    def test_runtime_and_bound_paths(self):
        app = make_comd(WorkloadSpec(n_ranks=4, iterations=2, seed=2015))
        pm = make_power_models(4)
        t_static = policy_iteration_time("static", app, pm, 4 * 50.0, 2)
        t_lp = policy_iteration_time("lp", app, pm, 4 * 50.0, 2)
        assert t_lp <= t_static
        assert t_static > 0

    def test_infeasible_bound_returns_none(self):
        app = make_comd(WorkloadSpec(n_ranks=4, iterations=2, seed=2015))
        pm = make_power_models(4)
        assert policy_iteration_time("lp", app, pm, 1.0, 2) is None

    def test_unknown_policy(self):
        app = make_comd(WorkloadSpec(n_ranks=4, iterations=2, seed=2015))
        pm = make_power_models(4)
        with pytest.raises(KeyError, match="registered"):
            policy_iteration_time("magic", app, pm, 200.0, 2)
