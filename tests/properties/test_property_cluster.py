"""Property-based tests for facility power partitioning."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cluster import JobRequest, partition_power

requests = st.lists(
    st.builds(
        JobRequest,
        name=st.text(min_size=1, max_size=8),
        n_sockets=st.integers(1, 64),
        min_w_per_socket=st.floats(10.0, 40.0),
        max_w_per_socket=st.floats(40.0, 120.0),
        priority=st.integers(0, 9),
    ),
    min_size=0,
    max_size=8,
)

policies = st.sampled_from(["uniform", "proportional", "priority"])


class TestPartitionProperties:
    @given(machine_w=st.floats(1.0, 50_000.0), reqs=requests, policy=policies)
    @settings(max_examples=120, deadline=None)
    def test_never_exceeds_machine(self, machine_w, reqs, policy):
        allocs = partition_power(machine_w, reqs, policy)
        assert sum(a.power_w for a in allocs) <= machine_w * (1 + 1e-9)

    @given(machine_w=st.floats(1.0, 50_000.0), reqs=requests, policy=policies)
    @settings(max_examples=120, deadline=None)
    def test_floor_and_cap_bounds(self, machine_w, reqs, policy):
        for a in partition_power(machine_w, reqs, policy):
            if a.admitted:
                assert a.power_w >= a.request.min_w - 1e-6
                assert a.power_w <= a.request.max_w + 1e-6
            else:
                assert a.power_w == 0.0

    @given(machine_w=st.floats(100.0, 10_000.0), reqs=requests,
           policy=policies)
    @settings(max_examples=60, deadline=None)
    def test_top_priority_admission_monotone(self, machine_w, reqs, policy):
        """The admitted-job *count* is legitimately non-monotone in machine
        power (a larger budget can admit one big high-priority job that
        displaces two small ones — classic knapsack).  What must hold: the
        first job in priority order never loses admission when the budget
        grows."""
        if not reqs:
            return
        small = partition_power(machine_w, reqs, policy)
        big = partition_power(machine_w * 1.5, reqs, policy)
        top = max(range(len(reqs)), key=lambda i: (reqs[i].priority, -i))
        if small[top].admitted:
            assert big[top].admitted
            assert big[top].power_w >= small[top].request.min_w - 1e-6

    @given(machine_w=st.floats(1.0, 50_000.0), reqs=requests, policy=policies)
    @settings(max_examples=60, deadline=None)
    def test_output_aligned_with_input(self, machine_w, reqs, policy):
        allocs = partition_power(machine_w, reqs, policy)
        assert len(allocs) == len(reqs)
        for a, r in zip(allocs, reqs):
            assert a.request is r
