"""ProgressReporter: heartbeat records, TTY behavior, throttling."""

from __future__ import annotations

import io
import json

import pytest

from repro.exec.timing import Telemetry
from repro.obs.progress import (
    PROGRESS_SCHEMA_VERSION,
    ProgressReporter,
    default_progress_stream,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TtyStream(io.StringIO):
    def isatty(self):
        return True


def test_total_must_be_non_negative():
    with pytest.raises(ValueError):
        ProgressReporter(total=-1)


def test_heartbeat_records_schema_and_counts(tmp_path):
    clock = FakeClock()
    path = tmp_path / "progress.jsonl"
    reporter = ProgressReporter(total=4, jsonl_path=path, clock=clock)
    clock.now = 1.0
    reporter.update(ok=True)
    clock.now = 2.0
    reporter.update(ok=False)
    clock.now = 4.0
    reporter.update(ok=True)
    reporter.update(ok=True)
    docs = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(docs) == 4
    first, last = docs[0], docs[-1]
    assert first["schema"] == PROGRESS_SCHEMA_VERSION
    assert first["kind"] == "progress"
    assert (first["done"], first["total"]) == (1, 4)
    assert first["elapsed_s"] == 1.0
    # 1 cell in 1s, 3 to go -> eta 3s.
    assert first["eta_s"] == 3.0
    assert last["done"] == 4 and last["failed"] == 1
    assert last["eta_s"] is None  # nothing left to estimate


def test_telemetry_counters_flow_into_records(tmp_path):
    tel = Telemetry()
    tel.count("cache.hit", 3)
    tel.count("cache.miss", 1)
    tel.count("task.retry", 2)
    path = tmp_path / "progress.jsonl"
    ProgressReporter(total=1, jsonl_path=path, telemetry=tel).update()
    doc = json.loads(path.read_text())
    assert doc["cache_hits"] == 3
    assert doc["cache_misses"] == 1
    assert doc["retries"] == 2
    assert doc["cache_hit_rate"] == 0.75


def test_non_tty_stream_gets_one_line_per_heartbeat():
    stream = io.StringIO()
    reporter = ProgressReporter(total=2, label="sweep:comd", stream=stream)
    reporter.update()
    reporter.update()
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("[sweep:comd] 1/2 cells (50%)")
    assert "\r" not in stream.getvalue()


def test_tty_stream_rewrites_in_place_and_closes_on_final():
    stream = TtyStream()
    reporter = ProgressReporter(total=2, stream=stream)
    reporter.update()
    out = stream.getvalue()
    assert out.startswith("\r") and not out.endswith("\n")
    reporter.update()
    assert stream.getvalue().endswith("\n")
    before = stream.getvalue()
    reporter.finish()  # idempotent: the final update already closed the line
    assert stream.getvalue() == before


def test_finish_closes_a_dangling_tty_line():
    stream = TtyStream()
    reporter = ProgressReporter(total=3, stream=stream)
    reporter.update()  # sweep aborts here
    assert not stream.getvalue().endswith("\n")
    reporter.finish()
    assert stream.getvalue().endswith("\n")


def test_intermediate_heartbeats_throttle_first_and_last_always_emit(tmp_path):
    clock = FakeClock()
    path = tmp_path / "progress.jsonl"
    reporter = ProgressReporter(
        total=5, jsonl_path=path, min_interval_s=10.0, clock=clock
    )
    for i in range(5):
        clock.now = float(i)  # well inside the 10s window
        reporter.update()
    docs = [json.loads(line) for line in path.read_text().splitlines()]
    # First emits, 2..4 are throttled, the final cell always emits.
    assert [d["done"] for d in docs] == [1, 5]
    assert reporter.records_emitted == 2


def test_resumed_cells_do_not_skew_the_eta(tmp_path):
    # 8 journal-resumed cells settle instantly; the throughput behind
    # the ETA must come from the 1 computed cell alone (10s each, 1
    # remaining -> eta 10s), not from 9 cells in 10s (-> eta ~1.1s).
    clock = FakeClock()
    path = tmp_path / "progress.jsonl"
    reporter = ProgressReporter(total=10, jsonl_path=path, clock=clock)
    for _ in range(8):
        reporter.update(ok=True, resumed=True)
    clock.now = 10.0
    reporter.update(ok=True)
    docs = [json.loads(line) for line in path.read_text().splitlines()]
    last = docs[-1]
    assert last["resumed"] == 8 and last["done"] == 9
    assert last["eta_s"] == 10.0


def test_all_resumed_yields_no_eta(tmp_path):
    clock = FakeClock()
    path = tmp_path / "progress.jsonl"
    reporter = ProgressReporter(total=3, jsonl_path=path, clock=clock)
    clock.now = 1.0
    reporter.update(ok=True, resumed=True)
    doc = json.loads(path.read_text().splitlines()[-1])
    # No computed cell yet: there is no throughput to extrapolate.
    assert doc["eta_s"] is None and doc["resumed"] == 1


def test_resumed_count_shows_in_the_status_line():
    stream = io.StringIO()
    reporter = ProgressReporter(total=2, stream=stream)
    reporter.update(ok=True, resumed=True)
    assert "1 resumed" in stream.getvalue()


def test_queue_depth_heartbeats(tmp_path):
    depth = [5]
    path = tmp_path / "progress.jsonl"
    stream = io.StringIO()
    reporter = ProgressReporter(
        total=2, jsonl_path=path, stream=stream, depth_fn=lambda: depth[0]
    )
    reporter.update()
    depth[0] = 3
    reporter.update()
    docs = [json.loads(line) for line in path.read_text().splitlines()]
    assert [d["queue_depth"] for d in docs] == [5, 3]
    assert "queue 5" in stream.getvalue()


def test_failed_cells_show_in_the_status_line():
    stream = io.StringIO()
    reporter = ProgressReporter(total=2, stream=stream)
    reporter.update(ok=False)
    assert "1 failed" in stream.getvalue()


class TestDefaultStream:
    def test_quiet_always_wins(self):
        assert default_progress_stream(force=True, quiet=True) is None

    def test_force_returns_stderr_even_piped(self, capsys):
        import sys

        assert default_progress_stream(force=True, quiet=False) is sys.stderr

    def test_non_tty_stderr_disables_the_line(self, monkeypatch):
        import sys

        monkeypatch.setattr(sys, "stderr", io.StringIO())
        assert default_progress_stream(force=False, quiet=False) is None

    def test_tty_stderr_enables_the_line(self, monkeypatch):
        import sys

        stream = TtyStream()
        monkeypatch.setattr(sys, "stderr", stream)
        assert default_progress_stream(force=False, quiet=False) is stream
