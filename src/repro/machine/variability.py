"""Per-socket manufacturing variability.

Processors of the same SKU differ in power efficiency: at identical
frequency and load, leakier parts draw measurably more power.  The paper
leans on this ("differences in power efficiency between individual
processors") — under a uniform Static cap, inefficient sockets are forced
into lower DVFS states than efficient ones, which creates load imbalance
that the LP and Conductor can undo by shifting power.

We model variability as a multiplicative efficiency factor per socket drawn
from a lognormal distribution (mean 1, small sigma), matching the few-percent
spreads reported for Sandy Bridge-class parts.
"""

from __future__ import annotations

import numpy as np

from .cpu import CpuSpec, XEON_E5_2670
from .power import SocketPowerModel

__all__ = ["sample_socket_efficiencies", "make_power_models"]


def sample_socket_efficiencies(
    n_sockets: int,
    sigma: float = 0.04,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Draw one power-efficiency multiplier per socket.

    A factor of 1.05 means the socket draws 5% more power than nominal at
    any operating point.  Factors are clipped to [0.85, 1.20] so a single
    extreme draw cannot dominate an experiment.

    Parameters
    ----------
    n_sockets:
        Number of sockets (= MPI ranks in the paper's one-process-per-socket
        setup).
    sigma:
        Lognormal shape parameter; 0.04 gives a ~±8% typical spread.
    seed:
        Seed or generator for reproducibility.  Experiments in this package
        always pass explicit seeds.
    """
    if n_sockets < 1:
        raise ValueError(f"n_sockets must be >= 1, got {n_sockets}")
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    rng = np.random.default_rng(seed)
    factors = rng.lognormal(mean=0.0, sigma=sigma, size=n_sockets)
    return np.clip(factors, 0.85, 1.20)


def make_power_models(
    n_ranks: int,
    efficiency_seed: int = 42,
    spec: CpuSpec = XEON_E5_2670,
    sigma: float = 0.04,
    rng: np.random.Generator | None = None,
) -> list[SocketPowerModel]:
    """One socket per rank, with the seeded manufacturing-variability spread.

    The efficiency draw is always explicit — either the ``rng`` passed in
    or a fresh generator from ``efficiency_seed`` — never global numpy
    state, so parallel workers rebuild identical machines and cache keys
    derived from (seed, sigma) are well-defined.
    """
    eff = sample_socket_efficiencies(
        n_ranks, sigma=sigma, seed=rng if rng is not None else efficiency_seed
    )
    return [SocketPowerModel(spec=spec, efficiency=float(e)) for e in eff]
