"""Execution subsystem: parallel fan-out, solver caching, telemetry.

Every paper figure is a sweep of independent, fully seeded cells; this
package makes those sweeps parallel and incremental without changing what
they compute:

``repro.exec.timing``
    Phase spans (trace / assemble / solve / replay) and counters,
    activated per-context so the uninstrumented cost stays measurable.
``repro.exec.keys``
    Canonical serialization + SHA-256 content addressing of model inputs.
``repro.exec.cache``
    On-disk memoization of LP solutions and comparison cells, with
    versioned invalidation and exact (bit-identical) round trips.
``repro.exec.parallel``
    Ordered process-pool map with per-task deadlines, seeded retry
    backoff, broken-pool recovery, structured per-cell outcomes, and a
    serial fallback.
``repro.exec.checkpoint``
    JSONL sweep journal: checkpoint completed cells, resume interrupted
    sweeps byte-identically.
``repro.exec.faults``
    Deterministic seeded fault injection (raise / delay / corrupt) — the
    test substrate of the resilience layer and the CI chaos smoke.
``repro.exec.options``
    Ambient workers/cache configuration consumed by the sweep layer.

Submodules are imported lazily: low-level packages (``repro.core``,
``repro.simulator``) import ``repro.exec.timing`` for instrumentation,
while ``repro.exec.cache`` imports ``repro.core`` — eager re-exports here
would turn that layering into an import cycle.
"""

from __future__ import annotations

__all__ = [
    "Telemetry",
    "current_telemetry",
    "use_telemetry",
    "span",
    "count",
    "SolverCache",
    "cached_solve_fixed_order_lp",
    "solver_key",
    "experiment_key",
    "trace_fingerprint",
    "machine_fingerprint",
    "ParallelRunner",
    "ParallelExecutionError",
    "PoolBrokenError",
    "CellOutcome",
    "retry_delay_s",
    "resolve_workers",
    "SweepJournal",
    "FaultSpec",
    "FaultInjector",
    "InjectedFault",
    "ExecutionOptions",
    "get_execution_options",
    "set_execution_options",
    "execution_options",
]

_EXPORTS = {
    "Telemetry": "timing",
    "current_telemetry": "timing",
    "use_telemetry": "timing",
    "span": "timing",
    "count": "timing",
    "SolverCache": "cache",
    "cached_solve_fixed_order_lp": "cache",
    "solver_key": "keys",
    "experiment_key": "keys",
    "trace_fingerprint": "keys",
    "machine_fingerprint": "keys",
    "ParallelRunner": "parallel",
    "ParallelExecutionError": "parallel",
    "PoolBrokenError": "parallel",
    "CellOutcome": "parallel",
    "retry_delay_s": "parallel",
    "resolve_workers": "parallel",
    "SweepJournal": "checkpoint",
    "FaultSpec": "faults",
    "FaultInjector": "faults",
    "InjectedFault": "faults",
    "ExecutionOptions": "options",
    "get_execution_options": "options",
    "set_execution_options": "options",
    "execution_options": "options",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
