"""Figure 8: flow ILP vs fixed-vertex-order LP on the two-rank exchange.

The paper sweeps 106 power caps and finds the two formulations agree
within 1.9% on all but three.  The harness sweeps a 24-cap subsample of
the same range (each point costs a MILP solve); the CLI's ``fig8``
exhibit runs the full 106.
"""

import pytest

from conftest import engage

from repro.experiments import figure8_flow_vs_fixed


@pytest.fixture(scope="module")
def fig8():
    return figure8_flow_vs_fixed(n_caps=24, time_limit_s=60.0)



def test_fig8_regeneration(benchmark, fig8):
    # Benchmark a single representative cap (one LP + one MILP solve).
    from repro.core import solve_fixed_order_lp, solve_flow_ilp
    from repro.experiments.runner import make_power_models
    from repro.simulator import trace_application
    from repro.workloads import two_rank_exchange

    trace = trace_application(
        two_rank_exchange(phases=2), make_power_models(2, 7, sigma=0.02)
    )

    def solve_pair():
        lp = solve_fixed_order_lp(trace, 50.0)
        ilp = solve_flow_ilp(trace, 50.0)
        return lp, ilp

    lp, ilp = benchmark(solve_pair)
    assert lp.feasible and ilp.feasible


def test_fig8_agreement_claim(benchmark, fig8):
    """All-but-a-few caps agree within 1.9% (the paper's headline for
    Figure 8: 103 of 106)."""
    engage(benchmark)
    comparable = fig8.comparable()
    assert len(comparable) >= 18
    assert fig8.agreement_fraction() >= 103 / 106


def test_fig8_monotone_series(benchmark, fig8):
    """Schedule time decreases as the total power cap rises, for both."""
    engage(benchmark)
    solved = fig8.comparable()
    fixed = [f for _, f, _ in solved]
    flow = [g for _, _, g in solved]
    assert all(b <= a + 1e-6 for a, b in zip(fixed, fixed[1:]))
    assert all(b <= a + 1e-6 for a, b in zip(flow, flow[1:]))


def test_fig8_flow_never_meaningfully_worse(benchmark, fig8):
    """The flow ILP chooses its own event order, so it is never worse than
    the fixed-order LP beyond tolerance."""
    engage(benchmark)
    for _, fixed, flow in fig8.comparable():
        assert flow <= fixed * (1 + 1e-4)
