"""Standalone Adagio: the energy-saving runtime of the related work.

Adagio (Rountree et al., ICS'09 — paper §7) runs on *fully provisioned*
systems: no power cap, every task free to run at the fastest
configuration, with slack-bearing tasks slowed just enough to absorb their
measured slack.  The paper's Conductor embeds it as step one; this
standalone policy reproduces the original system so the related work's
premise — "save energy without increasing execution time" — can be
measured against the energy-LP bound (:func:`repro.core.solve_energy_lp`).
"""

from __future__ import annotations

from ..machine.configuration import ConfigPoint, Configuration
from ..machine.cpu import CpuSpec, XEON_E5_2670
from ..machine.frontiers import FrontierStore, NodeFrontierStore
from ..machine.performance import TaskKernel
from ..machine.power import SocketPowerModel
from ..simulator.engine import TaskRecord
from ..simulator.program import Application, ComputeOp, TaskRef
from .adagio import SlackEstimator, slowest_fitting_point
from .conductor import task_key_for

__all__ = ["AdagioPolicy"]


class AdagioPolicy:
    """Uncapped slack reclamation: fastest configs, slowed into slack."""

    def __init__(
        self,
        power_models: list[SocketPowerModel],
        app: Application,
        spec: CpuSpec = XEON_E5_2670,
        safety: float = 0.9,
        switch_overhead_s: float = 145e-6,
        min_switch_duration_s: float = 1e-3,
        frontier_store: FrontierStore | NodeFrontierStore | None = None,
    ) -> None:
        if not (0.0 <= safety <= 1.0):
            raise ValueError(f"safety must be in [0,1], got {safety}")
        self.power_models = power_models
        self.spec = spec
        self.safety = safety
        self.switch_overhead_s = switch_overhead_s
        self.min_switch_duration_s = min_switch_duration_s
        tpi = {
            r: max(
                1,
                sum(
                    1
                    for op in app.programs[r]
                    if isinstance(op, ComputeOp) and op.iteration == 0
                ),
            )
            for r in range(len(power_models))
        }
        self.tasks_per_iteration = tpi
        self.slack = SlackEstimator(tpi)
        self.frontiers = (
            frontier_store
            if frontier_store is not None
            else FrontierStore(power_models)
        )

    def _frontier(self, rank: int, kernel: TaskKernel) -> list[ConfigPoint]:
        return self.frontiers.convex(rank, kernel)

    def configure(
        self,
        ref: TaskRef,
        kernel: TaskKernel,
        iteration: int,
        current: Configuration | None,
    ) -> Configuration:
        """Fastest configuration, slowed into the task's measured slack."""
        frontier = self._frontier(ref.rank, kernel)
        fastest = frontier[-1]
        chosen = fastest
        slack_s = self.slack.slack_estimate(
            task_key_for(ref, self.tasks_per_iteration[ref.rank])
        )
        if slack_s is not None:
            chosen = slowest_fitting_point(
                frontier, fastest.duration_s + self.safety * slack_s
            )
        if (
            current is not None
            and chosen.config != current
            and chosen.duration_s < self.min_switch_duration_s
        ):
            return current
        return chosen.config

    def on_pcontrol(self, iteration: int, records: list[TaskRecord]) -> float:
        self.slack.update(records)
        return 0.0

    def switch_cost_s(self) -> float:
        return self.switch_overhead_s
