"""Tests for Table 3 and the overheads summary at reduced scale."""

import pytest

from repro.experiments import (
    minimum_cap_table,
    overheads_summary,
    table3_lulesh_task_characteristics,
)


class TestTable3:
    @pytest.fixture(scope="class")
    def table(self):
        return table3_lulesh_task_characteristics(
            cap_per_socket_w=50.0, n_ranks=8, iteration=18
        )

    def test_three_methods(self, table):
        assert [r.method for r in table.rows] == ["Static", "Conductor", "LP"]

    def test_static_pinned_at_eight_threads(self, table):
        assert table.row("Static").threads == "8"

    def test_adaptive_methods_drop_threads(self, table):
        """The paper's key Table-3 observation: Conductor and the LP pick
        4-5 threads under the 50 W cap where Static is stuck at 8."""
        for method in ("Conductor", "LP"):
            lo = int(table.row(method).threads.split("-")[0])
            assert lo <= 6

    def test_adaptive_methods_faster(self, table):
        t_static = table.row("Static").median_time_s
        assert table.row("LP").median_time_s < t_static
        assert table.row("Conductor").median_time_s < t_static

    def test_power_spread_jumps_for_nonuniform(self, table):
        """Static's task powers are nearly uniform; LP/Conductor spread
        power across ranks (std-dev columns 0.009 vs 0.118/0.125)."""
        assert table.row("Static").power_stddev_rel < 0.06
        assert table.row("LP").power_stddev_rel > table.row(
            "Static"
        ).power_stddev_rel

    def test_frequencies_normalized(self, table):
        for row in table.rows:
            assert 0.0 < row.median_freq_rel <= 1.0

    def test_render(self, table):
        text = table.render()
        assert "Table 3" in text and "Static" in text


class TestOverheads:
    @pytest.fixture(scope="class")
    def result(self):
        return overheads_summary(n_ranks=4, iterations=8)

    def test_paper_constants(self, result):
        assert result.tracing_per_call_s == pytest.approx(34e-6)
        assert result.dvfs_switch_s == pytest.approx(145e-6)
        assert result.realloc_per_invocation_s == pytest.approx(566e-6)

    def test_tracing_fraction_below_paper_bound(self, result):
        assert 0.0 <= result.measured_tracing_fraction < 0.0005  # < 0.05%

    def test_activity_observed(self, result):
        assert result.measured_reallocs > 0

    def test_render(self, result):
        assert "34 us" in result.render()


class TestMinimumCap:
    @pytest.fixture(scope="class")
    def result(self):
        return minimum_cap_table(n_ranks=4, iterations=2)

    def test_covers_all_benchmarks(self, result):
        assert [r[0] for r in result.rows] == ["comd", "lulesh", "bt", "sp"]

    def test_caps_physical(self, result):
        # Per-socket minima must sit inside the machine's power range.
        for _, min_w, _, _ in result.rows:
            assert 5.0 < min_w < 120.0

    def test_min_cap_actually_feasible(self, result):
        from repro.core import solve_fixed_order_lp
        from repro.experiments import make_power_models
        from repro.simulator import trace_application
        from repro.workloads import BENCHMARKS, WorkloadSpec

        name, min_w, _, _ = result.row("comd")
        app = BENCHMARKS[name](WorkloadSpec(n_ranks=4, iterations=2, seed=2015))
        trace = trace_application(app, make_power_models(4))
        assert solve_fixed_order_lp(trace, min_w * 4).feasible

    def test_solve_counts_reported(self, result):
        for _, _, _, n_solves in result.rows:
            assert n_solves >= 2  # at least the two bracket probes

    def test_render(self, result):
        text = result.render()
        assert "Minimum feasible power caps" in text
        assert "lulesh" in text

    def test_unknown_benchmark_raises(self, result):
        with pytest.raises(KeyError):
            result.row("hpl")


class TestFrontier:
    @pytest.fixture(scope="class")
    def frontier(self):
        from repro.experiments import frontier_table

        return frontier_table(
            n_ranks=4, caps=(40.0, 60.0), benchmark="synthetic", quick=True
        )

    def test_every_defined_row_has_power_and_perf_per_watt(self, frontier):
        rows = frontier.rows()
        assert len(rows) == 2 * 5  # caps x policies
        for cap, name, kind, t, e, power, ppw, _mark in rows:
            if t is None:
                assert e is None and power is None and ppw is None
            else:
                assert power == pytest.approx(e / t)
                assert ppw == pytest.approx(1000.0 / e)

    def test_energy_lp_is_never_dominated(self, frontier):
        """The headline invariant: at every cap the capped min-energy
        bound sits on the Pareto frontier."""
        for cap in (40.0, 60.0):
            assert "energy-lp" in frontier.pareto_optimal(cap)

    def test_energy_lp_lower_bounds_the_lp_bound(self, frontier):
        lp = frontier.energy_series("lp")
        elp = frontier.energy_series("energy-lp")
        assert all(
            e <= l * (1 + 1e-9) for e, l in zip(elp, lp)
        )

    def test_energy_series_spans_the_cap_grid(self, frontier):
        series = frontier.energy_series("dvfs-energy")
        assert len(series) == 2
        assert all(e is not None and e > 0 for e in series)

    def test_render(self, frontier):
        text = frontier.render()
        assert "Energy-runtime frontier: synthetic, 4 ranks" in text
        assert "perf/W (iter/kJ)" in text
        assert "energy-lp" in text
        assert "*" in text
