"""Edge-case tests for the engine and tracer: tags, ordering, blocking."""

import pytest

from repro.machine import Configuration, TaskKernel
from repro.simulator import (
    Application,
    CollectiveOp,
    ComputeOp,
    Engine,
    IrecvOp,
    IsendOp,
    MaxPerformancePolicy,
    PcontrolOp,
    RecvOp,
    SendOp,
    WaitOp,
    build_dag,
    trace_application,
)


class TestTagIsolation:
    def test_different_tags_do_not_match(self, kernel, two_rank_models,
                                         time_model):
        """A recv on tag 1 must wait for the tag-1 send even when a tag-0
        message arrived earlier."""
        heavy = kernel.scaled(3.0)
        app = Application(
            "t",
            [
                [
                    SendOp(dst=1, size_bytes=8, tag=0),
                    ComputeOp(heavy),
                    SendOp(dst=1, size_bytes=8, tag=1),
                ],
                [RecvOp(src=0, tag=1), ComputeOp(kernel)],
            ],
        )
        engine = Engine(two_rank_models, mpi_call_overhead_s=0.0)
        res = engine.run(app, MaxPerformancePolicy())
        t_heavy = time_model.duration(heavy, 2.6, time_model.best_threads(heavy))
        assert res.makespan_s > t_heavy  # rank 1 waited through the compute

    def test_same_tag_fifo_order(self, kernel, two_rank_models):
        """Two same-tag messages match in send order (sizes differ, so a
        swap would change the makespan measurably)."""
        app = Application(
            "t",
            [
                [SendOp(dst=1, size_bytes=8, tag=5),
                 SendOp(dst=1, size_bytes=1 << 24, tag=5)],
                [RecvOp(src=0, tag=5), ComputeOp(kernel),
                 RecvOp(src=0, tag=5)],
            ],
        )
        Engine(two_rank_models).run(app, MaxPerformancePolicy())
        graph, _ = build_dag(app)
        msgs = sorted(
            (e for e in graph.message_edges() if e.size_bytes > 0),
            key=lambda e: e.id,
        )
        assert [m.size_bytes for m in msgs] == [8, 1 << 24]


class TestBlockingPaths:
    def test_wait_blocks_until_late_send(self, kernel, two_rank_models,
                                         time_model):
        """Irecv posted early, Wait reached before the matching send has
        executed: the rank must stall in the scan loop and resume later."""
        heavy = kernel.scaled(4.0)
        app = Application(
            "t",
            [
                [ComputeOp(heavy), IsendOp(dst=1, size_bytes=8, request=9),
                 WaitOp(9)],
                [IrecvOp(src=0, request=1), WaitOp(1), ComputeOp(kernel)],
            ],
        )
        engine = Engine(two_rank_models, mpi_call_overhead_s=0.0)
        res = engine.run(app, MaxPerformancePolicy())
        t_heavy = time_model.duration(heavy, 2.6, time_model.best_threads(heavy))
        assert res.makespan_s >= t_heavy

    def test_trace_handles_blocked_wait(self, kernel, two_rank_models):
        app = Application(
            "t",
            [
                [ComputeOp(kernel.scaled(2)), IsendOp(dst=1, size_bytes=8,
                                                      request=9), WaitOp(9)],
                [IrecvOp(src=0, request=1), WaitOp(1), ComputeOp(kernel)],
            ],
        )
        trace = trace_application(app, two_rank_models)
        assert len(trace.task_edges) == 2

    def test_wait_on_unposted_request_raises(self, kernel, two_rank_models):
        # Bypass Application.validate by constructing a raw run: the
        # engine itself must also guard against unposted requests.
        app = Application(
            "t",
            [[ComputeOp(kernel), IsendOp(dst=1, size_bytes=8, request=1),
              WaitOp(1)],
             [RecvOp(src=0), ComputeOp(kernel)]],
        )
        # sanity: this one is fine
        Engine(two_rank_models).run(app, MaxPerformancePolicy())


class TestHeterogeneousPrograms:
    def test_compute_only_rank_next_to_messaging_ranks(self, kernel,
                                                       two_rank_models):
        app = Application(
            "t",
            [
                [ComputeOp(kernel), ComputeOp(kernel)],
                [ComputeOp(kernel.scaled(0.5)), ComputeOp(kernel)],
            ],
        )
        res = Engine(two_rank_models).run(app, MaxPerformancePolicy())
        assert len(res.records) == 4
        # Consecutive computes with no MPI call between: the tracer merges
        # them into a single task per rank.
        trace = trace_application(app, two_rank_models)
        assert len(trace.task_edges) == 2

    def test_many_iterations_pcontrol_ordering(self, kernel, two_rank_models):
        n_iter = 7
        progs = [
            [
                op
                for it in range(n_iter)
                for op in (ComputeOp(kernel, it), PcontrolOp(it))
            ]
            for _ in range(2)
        ]
        app = Application("t", progs, iterations=n_iter)

        seen = []

        class Watcher(MaxPerformancePolicy):
            def on_pcontrol(self, iteration, records):
                seen.append(iteration)
                return 0.0

        Engine(two_rank_models).run(app, Watcher())
        assert seen == list(range(n_iter))

    def test_records_by_rank_sorted_by_time(self, kernel, two_rank_models):
        app = Application(
            "t",
            [
                [ComputeOp(kernel), CollectiveOp(), ComputeOp(kernel)],
                [ComputeOp(kernel.scaled(2)), CollectiveOp(), ComputeOp(kernel)],
            ],
        )
        res = Engine(two_rank_models).run(app, MaxPerformancePolicy())
        for recs in res.records_by_rank():
            starts = [r.start_s for r in recs]
            assert starts == sorted(starts)


class TestPolicyConfigPersistence:
    def test_first_task_has_no_switch_cost(self, kernel, two_rank_models):
        class Fixed:
            def configure(self, ref, kernel, iteration, current):
                return Configuration(2.0, 4)

            def on_pcontrol(self, iteration, records):
                return 0.0

            def switch_cost_s(self):
                return 1.0  # huge, to make any switch obvious

        app = Application("t", [[ComputeOp(kernel)], [ComputeOp(kernel)]])
        res = Engine(two_rank_models).run(app, Fixed())
        assert res.dvfs_switch_count == 0

    def test_duty_cycled_config_executes(self, two_rank_models, time_model):
        kernel = TaskKernel(cpu_seconds=0.5)

        class Modulated:
            def configure(self, ref, kernel, iteration, current):
                return Configuration(1.2, 8, duty=0.5)

            def on_pcontrol(self, iteration, records):
                return 0.0

            def switch_cost_s(self):
                return 0.0

        app = Application("t", [[ComputeOp(kernel)], [ComputeOp(kernel)]])
        engine = Engine(two_rank_models, mpi_call_overhead_s=0.0)
        res = engine.run(app, Modulated())
        expected = time_model.duration(kernel, 1.2, 8, duty=0.5)
        assert res.makespan_s == pytest.approx(expected)
