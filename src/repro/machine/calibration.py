"""Power-model calibration from measured samples.

Porting the reproduction to a different processor means finding
:class:`PowerModelParams` that match *its* behaviour.  Given samples of
``(frequency, threads, activity, mem_intensity) -> watts`` — e.g. RAPL
counter readings swept over P-states on real hardware — this module fits
the analytic socket model by nonlinear least squares (scipy), and reports
the residual so users can judge whether the model family suffices.

The model is identifiable from modest sweeps: a single-thread frequency
sweep pins (leakage+uncore, dynamic coefficient, exponent); a thread sweep
separates per-core from uncore terms; varying memory intensity pins the
uncore-memory term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.optimize as sopt

from .cpu import CpuSpec, XEON_E5_2670
from .power import PowerModelParams, SocketPowerModel

__all__ = ["PowerSample", "CalibrationResult", "fit_power_model",
           "sample_power_model"]


@dataclass(frozen=True)
class PowerSample:
    """One observed operating point."""

    freq_ghz: float
    threads: int
    power_w: float
    activity: float = 1.0
    mem_intensity: float = 0.0

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0 or self.threads < 1 or self.power_w <= 0:
            raise ValueError(f"invalid sample {self}")


@dataclass
class CalibrationResult:
    """Fitted parameters plus goodness-of-fit diagnostics."""

    params: PowerModelParams
    rmse_w: float
    max_abs_error_w: float
    n_samples: int

    def model(self, spec: CpuSpec = XEON_E5_2670,
              efficiency: float = 1.0) -> SocketPowerModel:
        """A socket power model built from the fitted parameters."""
        return SocketPowerModel(spec=spec, params=self.params,
                                efficiency=efficiency)


def _predict(theta: np.ndarray, samples: list[PowerSample],
             fmax_ghz: float) -> np.ndarray:
    uncore_idle, uncore_mem, leak, dyn, gamma = theta
    out = np.empty(len(samples))
    for i, s in enumerate(samples):
        rel = s.freq_ghz / fmax_ghz
        out[i] = (
            uncore_idle
            + uncore_mem * s.mem_intensity
            + s.threads * (leak + s.activity * dyn * rel**gamma)
        )
    return out


def fit_power_model(
    samples: list[PowerSample],
    spec: CpuSpec = XEON_E5_2670,
    p_idle_socket: float = 5.0,
) -> CalibrationResult:
    """Fit PowerModelParams to measured samples (least squares).

    Requires at least 5 samples (the model has 5 free parameters); in
    practice a 15-point P-state sweep at two thread counts fits tightly.
    """
    if len(samples) < 5:
        raise ValueError(
            f"need at least 5 samples to fit 5 parameters, got {len(samples)}"
        )
    target = np.array([s.power_w for s in samples])

    def residuals(theta):
        return _predict(theta, samples, spec.fmax_ghz) - target

    x0 = np.array([7.0, 6.0, 0.8, 4.8, 2.4])
    lower = np.array([0.0, 0.0, 0.0, 0.1, 1.0])
    upper = np.array([50.0, 50.0, 10.0, 50.0, 3.5])
    fit = sopt.least_squares(residuals, x0, bounds=(lower, upper))
    uncore_idle, uncore_mem, leak, dyn, gamma = fit.x
    params = PowerModelParams(
        p_uncore_idle=float(uncore_idle),
        p_uncore_mem=float(uncore_mem),
        p_core_leak=float(leak),
        p_core_dyn_max=float(dyn),
        freq_exponent=float(gamma),
        p_idle_socket=p_idle_socket,
    )
    errs = residuals(fit.x)
    return CalibrationResult(
        params=params,
        rmse_w=float(np.sqrt(np.mean(errs**2))),
        max_abs_error_w=float(np.max(np.abs(errs))),
        n_samples=len(samples),
    )


def sample_power_model(
    model: SocketPowerModel,
    activities: tuple[float, ...] = (1.0,),
    mem_intensities: tuple[float, ...] = (0.0, 0.6),
    thread_counts: tuple[int, ...] | None = None,
    noise: float = 0.0,
    seed: int = 0,
) -> list[PowerSample]:
    """Generate calibration samples from an existing model (testing aid,
    and a template for the sweep a real-hardware calibration should run)."""
    rng = np.random.default_rng(seed)
    threads = thread_counts if thread_counts is not None else (1, 4, model.spec.cores)
    samples = []
    for f in model.spec.pstates:
        for n in threads:
            for act in activities:
                for mem in mem_intensities:
                    p = model.power(f, n, act, mem)
                    if noise > 0:
                        p *= float(rng.lognormal(0.0, noise))
                    samples.append(
                        PowerSample(freq_ghz=f, threads=n, power_w=p,
                                    activity=act, mem_intensity=mem)
                    )
    return samples
