"""Unit tests for machine-level power partitioning."""

import pytest

from repro.cluster import JobRequest, partition_power


def req(name, sockets, lo=25.0, hi=80.0, priority=0):
    return JobRequest(name=name, n_sockets=sockets, min_w_per_socket=lo,
                      max_w_per_socket=hi, priority=priority)


class TestJobRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobRequest("x", 0)
        with pytest.raises(ValueError):
            JobRequest("x", 4, min_w_per_socket=50, max_w_per_socket=40)
        with pytest.raises(ValueError):
            JobRequest("x", 4, min_w_per_socket=0.0)

    def test_totals(self):
        r = req("a", 10, lo=30, hi=60)
        assert r.min_w == 300
        assert r.max_w == 600


class TestPartitionBasics:
    def test_empty(self):
        assert partition_power(1000, []) == []

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            partition_power(0, [req("a", 1)])
        with pytest.raises(ValueError):
            partition_power(100, [req("a", 1)], policy="fcfs")

    def test_total_never_exceeded(self):
        requests = [req("a", 8), req("b", 16), req("c", 4)]
        for policy in ("uniform", "proportional", "priority"):
            allocs = partition_power(1400.0, requests, policy)
            assert sum(a.power_w for a in allocs) <= 1400.0 + 1e-6

    def test_floors_respected(self):
        allocs = partition_power(2000.0, [req("a", 8), req("b", 8)])
        for a in allocs:
            assert not a.admitted or a.power_w >= a.request.min_w - 1e-9

    def test_caps_respected(self):
        allocs = partition_power(100000.0, [req("a", 8), req("b", 8)])
        for a in allocs:
            assert a.power_w <= a.request.max_w + 1e-9


class TestAdmission:
    def test_job_below_floor_rejected(self):
        allocs = partition_power(150.0, [req("a", 4), req("b", 4)])
        admitted = [a for a in allocs if a.admitted]
        rejected = [a for a in allocs if not a.admitted]
        assert len(admitted) == 1 and len(rejected) == 1
        assert rejected[0].power_w == 0.0

    def test_priority_admission_order(self):
        requests = [req("low", 4, priority=0), req("high", 4, priority=5)]
        allocs = partition_power(120.0, requests)  # only one floor fits
        by_name = {a.request.name: a for a in allocs}
        assert by_name["high"].admitted
        assert not by_name["low"].admitted


class TestDistribution:
    def test_uniform_equal_per_socket(self):
        allocs = partition_power(
            800.0, [req("a", 4, lo=25, hi=200), req("b", 12, lo=25, hi=200)]
        )
        per_socket = [a.w_per_socket for a in allocs]
        assert per_socket[0] == pytest.approx(per_socket[1])
        assert sum(a.power_w for a in allocs) == pytest.approx(800.0)

    def test_uniform_spills_past_saturated_jobs(self):
        allocs = partition_power(
            1000.0, [req("small", 4, lo=25, hi=40), req("big", 8, lo=25, hi=200)]
        )
        by_name = {a.request.name: a for a in allocs}
        assert by_name["small"].power_w == pytest.approx(160.0)  # saturated
        assert by_name["big"].power_w == pytest.approx(840.0)

    def test_priority_policy_greedy(self):
        # Floors (100 W each) are granted to both; the 200 W surplus then
        # flows to the high-priority job first, up to its 320 W maximum.
        requests = [req("low", 4, priority=0), req("high", 4, priority=9)]
        allocs = partition_power(400.0, requests, policy="priority")
        by_name = {a.request.name: a for a in allocs}
        assert by_name["high"].power_w == pytest.approx(300.0)
        assert by_name["low"].power_w == pytest.approx(100.0)

    def test_priority_surplus_cascades(self):
        # Enough surplus to saturate the high-priority job: the rest
        # cascades down to the low-priority one.
        requests = [req("low", 4, priority=0), req("high", 4, priority=9)]
        allocs = partition_power(500.0, requests, policy="priority")
        by_name = {a.request.name: a for a in allocs}
        assert by_name["high"].power_w == pytest.approx(320.0)  # its max
        assert by_name["low"].power_w == pytest.approx(180.0)

    def test_unspendable_surplus_left(self):
        allocs = partition_power(10_000.0, [req("a", 2, hi=50.0)])
        assert allocs[0].power_w == pytest.approx(100.0)


class TestIntegrationWithLp:
    def test_job_allocation_feeds_lp(self):
        """End-to-end facility flow: partition the machine, then bound each
        job's performance under its share."""
        from repro.core import solve_fixed_order_lp
        from repro.experiments import make_power_models
        from repro.simulator import trace_application
        from repro.workloads import WorkloadSpec, make_comd

        requests = [req("comd-A", 4, lo=25, hi=60),
                    req("comd-B", 4, lo=25, hi=60)]
        allocs = partition_power(280.0, requests)
        for alloc in allocs:
            assert alloc.admitted
            app = make_comd(WorkloadSpec(n_ranks=4, iterations=2, seed=1))
            trace = trace_application(app, make_power_models(4))
            res = solve_fixed_order_lp(trace, alloc.power_w)
            assert res.feasible
