"""Common machinery for benchmark proxy generators.

Each proxy reproduces the three workload properties the paper's evaluation
spread hinges on: communication structure (collectives vs point-to-point),
load-imbalance profile (static zone imbalance, dynamic per-iteration
jitter), and thread-scaling character (bandwidth saturation and cache
contention).  Everything is driven by explicit seeds so traces, runs, and
experiments are bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..machine.performance import TaskKernel
from ..simulator.program import Application

__all__ = ["WorkloadSpec", "static_imbalance", "dynamic_jitter", "WorkloadBuilder"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shared generator parameters.

    ``n_ranks`` defaults to the paper's 32 MPI processes (one per socket,
    8 cores each = 256 cores); ``iterations`` counts time steps, each ended
    by an ``MPI_Pcontrol`` boundary as the paper's modified benchmarks do.
    """

    n_ranks: int = 32
    iterations: int = 16
    seed: int = 2015
    scale: float = 1.0  # multiplies all task work (problem size knob)

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.scale <= 0:
            raise ValueError("scale must be positive")


def static_imbalance(
    n_ranks: int, spread: float, rng: np.random.Generator
) -> np.ndarray:
    """Per-rank work multipliers, fixed for the whole run.

    ``spread`` is the ratio between the heaviest and lightest rank; factors
    are log-uniform in [1/sqrt(spread), sqrt(spread)] and normalized to a
    mean of 1 so total work is spread-independent.
    """
    if spread < 1.0:
        raise ValueError(f"spread must be >= 1, got {spread}")
    if spread == 1.0:
        return np.ones(n_ranks)
    half = np.sqrt(spread)
    factors = np.exp(rng.uniform(np.log(1 / half), np.log(half), n_ranks))
    # Pin the extremes so the nominal spread is realized exactly.
    if n_ranks >= 2:
        factors[np.argmin(factors)] = 1 / half
        factors[np.argmax(factors)] = half
    return factors / factors.mean()


def dynamic_jitter(
    n_ranks: int, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Per-iteration multiplicative work jitter (particle migration etc.)."""
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return np.ones(n_ranks)
    return rng.lognormal(0.0, sigma, n_ranks)


@dataclass
class WorkloadBuilder:
    """Accumulates per-rank op lists and finishes into an Application."""

    name: str
    n_ranks: int
    programs: list[list] = field(init=False)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.programs = [[] for _ in range(self.n_ranks)]

    def add(self, rank: int, op) -> None:
        self.programs[rank].append(op)

    def add_all(self, op_factory) -> None:
        """Append ``op_factory(rank)`` to every rank."""
        for r in range(self.n_ranks):
            self.programs[r].append(op_factory(r))

    def finish(self, iterations: int) -> Application:
        """Validate and return the assembled application."""
        app = Application(
            name=self.name,
            programs=self.programs,
            iterations=iterations,
            metadata=self.metadata,
        )
        app.validate()
        return app


def scaled_kernel(base: TaskKernel, factor: float) -> TaskKernel:
    """Work-scaled copy of a kernel (thin alias for readability)."""
    return base.scaled(factor)
