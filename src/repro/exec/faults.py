"""Deterministic seeded fault injection for sweep execution.

Production sweeps fail in boring, repeatable ways — a worker raises, a
solver wedges, a shared cache entry gets torn.  This module makes those
failures *reproducible on demand*: a :class:`FaultInjector` wraps a
sweep's task function and, on deterministically selected cells, raises
an :class:`InjectedFault`, delays the task, or corrupts solver-cache
entries after it completes.

Selection is a pure function of ``(seed, cell key)``: the SHA-256 of the
pair is mapped to a unit float and compared against ``rate``, optionally
restricted to keys containing ``match``.  Two runs with the same spec
hit exactly the same cells — which is what lets CI assert that a
fault-injected ``--keep-going`` sweep, and its interrupted-and-resumed
twin, produce byte-identical failure reports.

Transient faults (``times=N``) need cross-process state — "this cell has
already failed twice" — which lives as marker files in a ``state_dir``,
claimed with ``O_EXCL`` so concurrent workers never double-count.
Without ``times`` a selected cell faults on every attempt.

Everything here is test/chaos machinery: the production path never
imports it unless an injector is explicitly passed in (or the CLI's
``--inject-faults`` flag builds one).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

__all__ = ["InjectedFault", "FaultSpec", "FaultInjector"]

#: Modes the injector understands.
FAULT_MODES = ("raise", "delay", "corrupt")


class InjectedFault(RuntimeError):
    """The failure raised by ``mode="raise"`` injection."""


def _unit(seed: int, key: str) -> float:
    """Map (seed, key) to a deterministic float in [0, 1)."""
    digest = hashlib.sha256(f"{seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _digest(key: str) -> str:
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class FaultSpec:
    """What to inject, where, and how often — as plain data.

    ``rate`` is the selection probability per cell (deterministic, see
    :func:`_unit`); ``match`` further restricts selection to cell keys
    containing the substring; ``times`` bounds how many injections each
    selected cell suffers (None = every attempt, the stateless mode CI
    byte-identity checks rely on); ``state_dir`` holds the cross-process
    markers ``times`` needs.
    """

    mode: str = "raise"
    rate: float = 1.0
    seed: int = 0
    match: str = ""
    times: int | None = None
    delay_s: float = 0.05
    state_dir: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; known: {FAULT_MODES}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.times is not None:
            if self.times < 1:
                raise ValueError(f"times must be >= 1, got {self.times}")
            if self.state_dir is None:
                raise ValueError("times= needs a state_dir for its markers")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Build a spec from ``key=value`` pairs: the CLI surface.

        Example: ``mode=raise,rate=0.5,seed=7`` or
        ``mode=delay,match=cap=50,delay_s=0.2``.  Values may themselves
        contain ``=`` (only the first one splits), so ``match=cap=50``
        works.
        """
        fields: dict[str, Any] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"fault spec part {part!r} is not key=value")
            name, value = part.split("=", 1)
            name = name.strip()
            if name in ("rate", "delay_s"):
                fields[name] = float(value)
            elif name in ("seed", "times"):
                fields[name] = int(value)
            elif name in ("mode", "match", "state_dir"):
                fields[name] = value
            else:
                raise ValueError(f"unknown fault spec field {name!r}")
        return cls(**fields)

    # ------------------------------------------------------------------
    def selects(self, key: str) -> bool:
        """Whether this spec targets the cell identified by ``key``."""
        if self.match and self.match not in key:
            return False
        return _unit(self.seed, key) < self.rate


class FaultInjector:
    """Wraps a task function to inject faults on selected cells.

    The wrapped callable is picklable whenever ``fn`` and ``key_fn``
    are (module-level functions), so it travels to pool workers intact.
    ``key_fn`` maps an item to the stable string identity that drives
    selection — it must not include run-scoped paths (temp dirs) or two
    otherwise-identical runs would fault different cells; by default the
    item's ``repr`` is used.  ``cache_root``, when given with
    ``mode="corrupt"``, names the solver-cache directory whose entries
    get deterministically torn after a selected cell completes.
    """

    def __init__(
        self,
        spec: FaultSpec,
        key_fn: Callable[[Any], str] | None = None,
        cache_root: str | Path | None = None,
    ) -> None:
        self.spec = spec
        self.key_fn = key_fn
        self.cache_root = str(cache_root) if cache_root is not None else None

    @classmethod
    def from_string(
        cls,
        text: str,
        key_fn: Callable[[Any], str] | None = None,
        cache_root: str | Path | None = None,
    ) -> "FaultInjector":
        return cls(FaultSpec.parse(text), key_fn=key_fn, cache_root=cache_root)

    def wrap(self, fn: Callable[[Any], Any]) -> "_FaultyTask":
        """The task function with this injector's faults applied."""
        return _FaultyTask(fn, self.spec, self.key_fn, self.cache_root)


class _FaultyTask:
    """The picklable wrapped task (module-level so workers unpickle it)."""

    def __init__(
        self,
        fn: Callable[[Any], Any],
        spec: FaultSpec,
        key_fn: Callable[[Any], str] | None,
        cache_root: str | None,
    ) -> None:
        self.fn = fn
        self.spec = spec
        self.key_fn = key_fn
        self.cache_root = cache_root

    def _key(self, item: Any) -> str:
        return self.key_fn(item) if self.key_fn is not None else repr(item)

    def __call__(self, item: Any) -> Any:
        spec = self.spec
        key = self._key(item)
        if spec.selects(key) and self._claim(key):
            if spec.mode == "raise":
                raise InjectedFault(f"injected fault on cell {key}")
            if spec.mode == "delay":
                time.sleep(spec.delay_s)
        result = self.fn(item)
        if spec.mode == "corrupt" and spec.selects(key) and self.cache_root:
            _corrupt_cache(self.cache_root, spec.seed, spec.rate)
        return result

    def _claim(self, key: str) -> bool:
        """Whether this attempt may inject (bounded by ``spec.times``).

        Claims one marker file per injection with ``O_EXCL``, so the
        count is exact even when attempts race across worker processes.
        """
        if self.spec.times is None:
            return True
        state = Path(self.spec.state_dir)
        state.mkdir(parents=True, exist_ok=True)
        digest = _digest(key)[:32]
        for k in range(self.spec.times):
            try:
                fd = os.open(state / f"{digest}.{k}", os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False


def _corrupt_cache(root: str, seed: int, rate: float) -> None:
    """Deterministically tear solver-cache entries under ``root``.

    Truncates each selected ``*.json`` entry to half its bytes —
    exactly the torn-write damage :class:`~repro.exec.cache.SolverCache`
    must degrade to a miss on, never an error.  Selection hashes the
    entry filename, so repeated chaos runs tear the same entries.
    """
    base = Path(root)
    if not base.is_dir():
        return
    for path in sorted(base.glob("v*/*/*.json")):
        if _unit(seed, f"corrupt:{path.name}") < rate:
            try:
                data = path.read_bytes()
                path.write_bytes(data[: len(data) // 2])
            except OSError:
                pass  # best-effort chaos: a vanished entry is fine too
