"""Unit tests for the event structure (fixed order + activity sets)."""

import pytest

from repro.core import build_event_structure
from repro.dag import DagBuilder, unconstrained_schedule


@pytest.fixture
def imbalanced_graph(kernel):
    b = DagBuilder(2)
    b.compute(0, kernel)              # finishes early -> slack
    b.compute(1, kernel.scaled(2.0))  # critical
    b.collective("allreduce", duration_s=1e-4)
    b.compute(0, kernel)
    b.compute(1, kernel)
    return b.finalize()


class TestEventOrder:
    def test_groups_cover_all_vertices(self, imbalanced_graph, time_model):
        ev = build_event_structure(imbalanced_graph, time_model)
        ids = [v for g in ev.groups for v in g]
        assert sorted(ids) == list(range(imbalanced_graph.n_vertices))
        assert ev.n_events == imbalanced_graph.n_vertices

    def test_groups_time_ordered(self, imbalanced_graph, time_model):
        ev = build_event_structure(imbalanced_graph, time_model)
        times = [ev.initial.vertex_times[g[0]] for g in ev.groups]
        assert times == sorted(times)

    def test_coincident_vertices_grouped(self, imbalanced_graph, time_model):
        ev = build_event_structure(imbalanced_graph, time_model)
        times = ev.initial.vertex_times
        for g in ev.groups:
            t0 = times[g[0]]
            assert all(abs(times[v] - t0) <= 1e-9 for v in g)

    def test_init_first_finalize_last(self, imbalanced_graph, time_model):
        ev = build_event_structure(imbalanced_graph, time_model)
        assert 0 in ev.groups[0]  # INIT is vertex 0 at time 0
        fin = max(
            range(imbalanced_graph.n_vertices),
            key=lambda v: ev.initial.vertex_times[v],
        )
        assert fin in ev.groups[-1]


class TestActivitySets:
    def test_active_tasks_have_started(self, imbalanced_graph, time_model):
        ev = build_event_structure(imbalanced_graph, time_model)
        times = ev.initial.vertex_times
        for vid, act in ev.active.items():
            t = times[vid]
            for edge_id in act:
                e = imbalanced_graph.edges[edge_id]
                assert times[e.src] <= t + 1e-9

    def test_at_most_one_task_per_rank(self, imbalanced_graph, time_model):
        """Slack-extended windows tile each rank's timeline: no event may
        charge two tasks of the same rank."""
        ev = build_event_structure(imbalanced_graph, time_model)
        for act in ev.active.values():
            ranks = [imbalanced_graph.edges[e].rank for e in act]
            assert len(ranks) == len(set(ranks))

    def test_waiting_rank_still_charged(self, imbalanced_graph, time_model):
        """While the light rank spins in the allreduce, its previous task's
        power must still be counted (slack power = task power)."""
        ev = build_event_structure(imbalanced_graph, time_model)
        light = min(
            imbalanced_graph.compute_edges(), key=lambda e: e.kernel.cpu_seconds
        )
        heavy = max(
            imbalanced_graph.compute_edges(), key=lambda e: e.kernel.cpu_seconds
        )
        # Event where the heavy rank enters the collective: light rank has
        # been waiting there for a while — it must still be active.
        assert light.id in ev.active[heavy.dst]

    def test_slack_keeps_task_active(self, imbalanced_graph, time_model):
        """The light rank's first task (plus slack) must still be charged at
        the event where the heavy rank finishes — slack power = task power."""
        ev = build_event_structure(imbalanced_graph, time_model)
        light = min(
            imbalanced_graph.compute_edges(), key=lambda e: e.kernel.cpu_seconds
        )
        heavy = max(
            imbalanced_graph.compute_edges(), key=lambda e: e.kernel.cpu_seconds
        )
        # Event at the heavy task's completion:
        assert heavy.dst in ev.active
        # The light task's window [src, dst) also ends there (same collective),
        # so at the *enter* vertex of the heavy rank, light must be active.
        enter_events = [
            v.id
            for v in imbalanced_graph.vertices
            if v.rank == heavy.rank and v.id == heavy.dst
        ]
        for vid in enter_events:
            assert light.id in ev.active[vid] or heavy.id in ev.active[vid]

    def test_both_tasks_active_mid_execution(self, imbalanced_graph, time_model):
        ev = build_event_structure(imbalanced_graph, time_model)
        first_phase = [
            e.id
            for e in imbalanced_graph.compute_edges()
        ][:2]
        # The event where the light task finishes (its dst is the collective
        # enter vertex) happens while the heavy task runs.
        sched = unconstrained_schedule(imbalanced_graph, time_model)
        mid_events = [
            vid
            for vid in range(imbalanced_graph.n_vertices)
            if 0 < sched.vertex_times[vid] < max(sched.vertex_times) * 0.4
        ]
        assert any(
            set(first_phase) <= set(ev.active[v]) for v in mid_events
        )

    def test_max_active_bounded_by_ranks(self, p2p_trace, time_model):
        ev = build_event_structure(p2p_trace.graph, time_model)
        assert 0 < ev.max_active() <= p2p_trace.graph.n_ranks + 1


class TestCustomInitial:
    def test_explicit_initial_schedule_used(self, imbalanced_graph, time_model):
        sched = unconstrained_schedule(imbalanced_graph, time_model)
        ev = build_event_structure(imbalanced_graph, initial=sched)
        assert ev.initial is sched
