"""Post-hoc sweep reports: journal + manifest + metrics in, one text out.

The operator's question after a long (possibly fault-injected, possibly
resumed) sweep is "what actually happened?" — and the artifacts already
hold the answer: the :class:`~repro.exec.checkpoint.SweepJournal` has
every settled cell (with a ``wall_s`` diagnostic), the run manifest has
the spec and the structured failures, and the metrics snapshot has cache
traffic and solve totals.  :func:`render_sweep_report` fuses them into
one aligned-text report:

* sweep overview (cells ok/failed, spec hash, benchmark);
* per-policy time table with min/mean/max and an ASCII distribution of
  per-iteration times across the cap grid;
* cache statistics (hits/misses/stores, derived hit rate) and solve
  totals from the metrics snapshot;
* the failure table of a ``--keep-going`` run, in cap order;
* the slowest cells by journaled wall seconds.

Everything renders from *files* — no recomputation — so the ``repro-exp
report`` subcommand works on artifacts shipped from another machine.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..exec.checkpoint import SweepJournal
from .report import render_kv, render_table

__all__ = [
    "load_journal_rows",
    "ascii_distribution",
    "render_sweep_report",
]

_BLOCKS = " .:-=+*#%@"


def load_journal_rows(path: str | Path) -> list[dict]:
    """Usable journal records in cap order (last record per cell wins)."""
    records = SweepJournal(path).load()
    return sorted(records.values(), key=lambda d: d.get("cap_per_socket_w", 0.0))


def ascii_distribution(values: list[float], bins: int = 12) -> str:
    """A one-line ASCII density sketch of ``values`` over their range.

    Each character is one equal-width bin between min and max, darkness
    proportional to the bin's share of observations — enough to spot a
    bimodal solve-time distribution in a CI log without a plot.
    """
    values = [v for v in values if v is not None]
    if not values:
        return "(no data)"
    lo, hi = min(values), max(values)
    if hi <= lo:
        return f"all {lo:g}"
    counts = [0] * bins
    for v in values:
        idx = min(bins - 1, int((v - lo) / (hi - lo) * bins))
        counts[idx] += 1
    peak = max(counts)
    sketch = "".join(
        _BLOCKS[min(len(_BLOCKS) - 1, (c * (len(_BLOCKS) - 1) + peak - 1) // peak)]
        if c else _BLOCKS[0]
        for c in counts
    )
    return f"{lo:.4g} |{sketch}| {hi:.4g}"


def _policy_rows(rows: list[dict]) -> tuple[list[str], dict[str, list]]:
    """Per-policy time series (cap order) from journaled-ok payloads."""
    labels: list[str] = []
    series: dict[str, list] = {}
    for doc in rows:
        if doc.get("status") != "ok":
            continue
        outcomes = (doc.get("payload") or {}).get("outcomes") or {}
        for label, outcome in outcomes.items():
            if label not in series:
                labels.append(label)
                series[label] = []
            series[label].append(outcome.get("time_s"))
    return labels, series


def render_sweep_report(
    journal_path: str | Path,
    manifest_path: str | Path | None = None,
    metrics_path: str | Path | None = None,
    top: int = 5,
) -> str:
    """The full post-hoc sweep report (see the module docstring)."""
    rows = load_journal_rows(journal_path)
    ok_rows = [d for d in rows if d.get("status") == "ok"]
    failed_rows = [d for d in rows if d.get("status") == "failed"]

    manifest = None
    if manifest_path is not None:
        manifest = json.loads(Path(manifest_path).read_text())
    metrics = None
    if metrics_path is not None:
        metrics = json.loads(Path(metrics_path).read_text())

    sections: list[str] = []

    # -- overview ------------------------------------------------------
    overview: dict = {
        "journal": str(journal_path),
        "cells settled": len(rows),
        "cells ok": len(ok_rows),
        "cells failed": len(failed_rows),
    }
    spec_hashes = sorted({
        d["spec_hash"][:12] for d in rows if isinstance(d.get("spec_hash"), str)
    })
    if spec_hashes:
        overview["spec hash"] = ", ".join(spec_hashes)
    if manifest is not None:
        scenario = manifest.get("scenario") or {}
        if scenario.get("benchmark"):
            overview["benchmark"] = scenario["benchmark"]
        if scenario.get("n_ranks"):
            overview["ranks"] = scenario["n_ranks"]
        overview["manifest schema"] = manifest.get("schema")
    sections.append(render_kv(overview, title="sweep report"))

    # -- per-policy times ----------------------------------------------
    labels, series = _policy_rows(rows)
    if labels:
        policy_table = []
        for label in labels:
            times = [t for t in series[label] if t is not None]
            policy_table.append([
                label,
                len(series[label]),
                min(times) if times else None,
                (sum(times) / len(times)) if times else None,
                max(times) if times else None,
                ascii_distribution(times),
            ])
        sections.append(render_table(
            ["policy", "cells", "min s/iter", "mean s/iter", "max s/iter",
             "distribution"],
            policy_table,
            title="per-policy time across the cap grid",
            digits=4,
        ))

    # -- cache + solve stats from the metrics snapshot -----------------
    if metrics is not None:
        counters = metrics.get("counters", {})
        hits = counters.get("cache.hit", 0)
        misses = counters.get("cache.miss", 0)
        lookups = hits + misses
        stats: dict = {
            "cache hits": hits,
            "cache misses": misses,
            "cache stores": counters.get("cache.store", 0),
            "cache hit rate": (
                f"{100.0 * hits / lookups:.1f}%" if lookups else "-"
            ),
            "solves": counters.get("solve.total", 0),
            "cells computed": counters.get("cells.computed", 0),
            "cells cached": counters.get("cells.cached", 0),
        }
        if counters.get("task.retry"):
            stats["task retries"] = counters["task.retry"]
        sections.append(render_kv(stats, title="cache and solver traffic"))

    # -- failures ------------------------------------------------------
    failures = [
        [
            doc.get("cap_per_socket_w"),
            (doc.get("failure") or {}).get("error_type"),
            (doc.get("failure") or {}).get("attempts"),
            (doc.get("failure") or {}).get("error_message"),
        ]
        for doc in failed_rows
    ]
    if not failures and manifest is not None:
        failures = [
            [f.get("cap_per_socket_w"), f.get("error_type"),
             f.get("attempts"), f.get("error_message")]
            for f in manifest.get("failures") or []
        ]
    if failures:
        sections.append(render_table(
            ["cap W/socket", "error", "attempts", "message"],
            failures,
            title="failed cells",
        ))

    # -- slowest cells -------------------------------------------------
    timed = [d for d in ok_rows if isinstance(d.get("wall_s"), (int, float))]
    if timed:
        timed.sort(key=lambda d: -d["wall_s"])
        sections.append(render_table(
            ["cap W/socket", "wall s"],
            [[d.get("cap_per_socket_w"), d["wall_s"]] for d in timed[:top]],
            title=f"slowest cells (top {min(top, len(timed))} by wall time)",
        ))

    return "\n\n".join(sections)
