#!/usr/bin/env python3
"""Compare a fresh pytest-benchmark JSON run against the committed baseline.

Fails (exit 1) when any benchmark's representative time regresses by more
than ``--threshold`` percent.  Because CI machines differ in absolute
speed, ``--calibrate NAME`` designates one benchmark as a machine-speed
probe: every fresh time is divided by the probe's fresh/baseline ratio
before comparison, so only *relative* slowdowns — a benchmark getting
slower than the machine did — trip the gate.

Usage::

    pytest benchmarks/test_bench_lp_scaling.py --benchmark-only \
        --benchmark-json=fresh.json
    python benchmarks/check_regression.py fresh.json
    python benchmarks/check_regression.py fresh.json --update   # new baseline

Stdlib-only so the gate runs anywhere the tests do.
"""

from __future__ import annotations

import argparse
import json
import math
import shutil
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def load_times(path: Path) -> dict[str, float]:
    """Map benchmark fullname -> representative seconds (median, else mean)."""
    doc = json.loads(path.read_text())
    times: dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        stats = bench.get("stats", {})
        value = stats.get("median", stats.get("mean"))
        if value is not None:
            times[bench["fullname"]] = float(value)
    return times


def compare(
    baseline: dict[str, float],
    fresh: dict[str, float],
    threshold_pct: float,
    calibrate: str | None,
    aggregate: bool = False,
    per_bench_threshold_pct: float | None = None,
    allow: list[str] | None = None,
) -> int:
    scale = 1.0
    if calibrate is not None:
        probes = [n for n in baseline if calibrate in n and n in fresh]
        if not probes:
            print(
                f"warning: calibration probe {calibrate!r} not in both runs; "
                "comparing raw times"
            )
        else:
            ratios = [fresh[n] / baseline[n] for n in probes]
            scale = sum(ratios) / len(ratios)
            print(
                f"machine-speed calibration from {len(probes)} probe(s): "
                f"fresh/baseline = {scale:.3f}"
            )

    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print("error: no benchmarks in common between baseline and fresh run")
        return 2
    for name in sorted(set(fresh) - set(baseline)):
        print(f"note: {name} has no baseline yet (run with --update to add)")

    # Under --aggregate the geomean is the headline gate, but a single
    # benchmark regressing wildly must not hide inside an otherwise-flat
    # mean: any individual slowdown beyond the per-bench ceiling (default
    # max(threshold, 25%)) still fails, unless the name matches an
    # --allow entry (a deliberate, documented trade).
    if per_bench_threshold_pct is None:
        per_bench_threshold_pct = max(threshold_pct, 25.0)
    allow = allow or []

    def allowed(name: str) -> bool:
        return any(pattern in name for pattern in allow)

    regressions = []
    ratios_for_mean: list[float] = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'fresh':>10}  {'delta':>8}")
    for name in shared:
        base_s = baseline[name]
        fresh_s = fresh[name] / scale
        delta_pct = (fresh_s / base_s - 1.0) * 100.0
        flag = ""
        is_probe = calibrate is not None and calibrate in name
        if aggregate:
            if not is_probe:
                ratios_for_mean.append(fresh_s / base_s)
                if delta_pct > per_bench_threshold_pct:
                    if allowed(name):
                        flag = "  (allowed)"
                    else:
                        flag = "  << REGRESSION"
                        regressions.append((name, delta_pct))
        elif delta_pct > threshold_pct and not is_probe:
            if allowed(name):
                flag = "  (allowed)"
            else:
                flag = "  << REGRESSION"
                regressions.append((name, delta_pct))
        print(
            f"{name:<{width}}  {base_s:>9.4f}s  {fresh_s:>9.4f}s  "
            f"{delta_pct:>+7.1f}%{flag}"
        )

    if aggregate:
        if not ratios_for_mean:
            print("error: no non-probe benchmarks to aggregate")
            return 2
        geomean = math.exp(
            sum(math.log(r) for r in ratios_for_mean) / len(ratios_for_mean)
        )
        delta_pct = (geomean - 1.0) * 100.0
        print(
            f"\ngeometric-mean slowdown over {len(ratios_for_mean)} "
            f"benchmark(s): {delta_pct:+.1f}%"
        )
        rc = 0
        if delta_pct > threshold_pct:
            print(f"FAIL: aggregate exceeds the {threshold_pct:.0f}% gate")
            rc = 1
        else:
            print(f"OK: aggregate within the {threshold_pct:.0f}% gate")
        if regressions:
            print(
                f"FAIL: {len(regressions)} benchmark(s) individually beyond "
                f"the {per_bench_threshold_pct:.0f}% per-benchmark ceiling:"
            )
            for name, d in regressions:
                print(f"  {name}: +{d:.1f}%")
            rc = 1
        return rc

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) slower than the "
            f"{threshold_pct:.0f}% gate:"
        )
        for name, delta_pct in regressions:
            print(f"  {name}: +{delta_pct:.1f}%")
        return 1
    print(f"\nOK: no benchmark regressed beyond {threshold_pct:.0f}%")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh", type=Path, help="pytest-benchmark JSON from the current run"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="allowed slowdown in percent (default 25)",
    )
    parser.add_argument(
        "--calibrate",
        default=None,
        metavar="NAME",
        help="benchmark (substring of fullname) used as a machine-speed probe",
    )
    parser.add_argument(
        "--aggregate",
        action="store_true",
        help=(
            "gate on the geometric mean of all calibrated fresh/baseline "
            "ratios instead of per-benchmark deltas (robust to noise on "
            "any single benchmark)"
        ),
    )
    parser.add_argument(
        "--per-bench-threshold",
        type=float,
        default=None,
        metavar="PCT",
        help=(
            "with --aggregate: per-benchmark slowdown ceiling that fails "
            "even when the geomean passes (default max(threshold, 25))"
        ),
    )
    parser.add_argument(
        "--allow",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "benchmark (substring of fullname) exempted from the "
            "per-benchmark gate; repeatable, for deliberate documented "
            "trades"
        ),
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="replace the baseline with the fresh run and exit",
    )
    args = parser.parse_args(argv)

    if not args.fresh.exists():
        print(f"error: no benchmark JSON at {args.fresh}")
        return 2

    if args.update:
        shutil.copyfile(args.fresh, args.baseline)
        print(f"baseline updated: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"error: no baseline at {args.baseline}; create one with --update")
        return 2
    return compare(
        load_times(args.baseline),
        load_times(args.fresh),
        args.threshold,
        args.calibrate,
        aggregate=args.aggregate,
        per_bench_threshold_pct=args.per_bench_threshold,
        allow=args.allow,
    )


if __name__ == "__main__":
    sys.exit(main())
