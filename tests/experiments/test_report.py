"""Unit tests for report rendering."""

from repro.experiments import render_kv, render_table
from repro.experiments.report import fmt


class TestFmt:
    def test_none(self):
        assert fmt(None) == "-"

    def test_bool(self):
        assert fmt(True) == "yes"
        assert fmt(False) == "no"

    def test_float_digits(self):
        assert fmt(1.23456, digits=2) == "1.23"

    def test_passthrough(self):
        assert fmt("abc") == "abc"
        assert fmt(7) == "7"


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "long-header"], [[1, 2.5], [300, None]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # aligned widths

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        out = render_table(["x", "y"], [])
        assert "x" in out and "y" in out


class TestRenderKv:
    def test_pairs(self):
        out = render_kv({"alpha": 1, "b": None}, title="T")
        assert out.splitlines()[0] == "T"
        assert "alpha" in out and "-" in out
