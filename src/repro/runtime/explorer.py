"""Configuration exploration: parallel profiling of the configuration space.

The paper's Conductor amortizes profiling by assigning a *different*
configuration to each MPI process within a time step and sharing the
measurements at the Pcontrol boundary — 32 ranks sample 32 configurations
per iteration, covering the ~120-point space in a few iterations.

This module provides the standalone exploration plan plus a coverage
calculator used by tests and the overheads analysis; the ConductorPolicy
embeds the same round-robin rule inline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.configuration import (
    ConfigPoint,
    Configuration,
    enumerate_configurations,
    measure_task,
)
from ..machine.cpu import CpuSpec, XEON_E5_2670
from ..machine.frontiers import FrontierStore
from ..machine.performance import TaskKernel
from ..machine.power import SocketPowerModel

__all__ = ["ExplorationPlan", "exploration_rounds_for_full_coverage"]


@dataclass
class ExplorationPlan:
    """Round-robin assignment of configurations to ranks across iterations."""

    spec: CpuSpec = XEON_E5_2670
    n_ranks: int = 32

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        self.configs = enumerate_configurations(self.spec)

    def config_for(self, rank: int, iteration: int, task_seq: int = 0) -> Configuration:
        """The configuration rank ``rank`` profiles in a given iteration."""
        idx = (rank + iteration * self.n_ranks + task_seq) % len(self.configs)
        return self.configs[idx]

    def coverage_after(self, iterations: int) -> float:
        """Fraction of the configuration space profiled after N iterations."""
        seen = {
            (rank + it * self.n_ranks) % len(self.configs)
            for it in range(iterations)
            for rank in range(self.n_ranks)
        }
        return len(seen) / len(self.configs)

    def profile(
        self,
        kernel: TaskKernel,
        power_model: SocketPowerModel,
        iterations: int,
    ) -> tuple[list[ConfigPoint], list[ConfigPoint]]:
        """Pareto and convex frontiers from the configurations profiled so far.

        Mirrors what Conductor can know after a partial exploration: with
        few iterations the frontier is a subset of the true one.
        """
        seen_idx = sorted(
            {
                (rank + it * self.n_ranks) % len(self.configs)
                for it in range(iterations)
                for rank in range(self.n_ranks)
            }
        )
        points = [
            measure_task(kernel, self.configs[i], power_model) for i in seen_idx
        ]
        return FrontierStore.reduce(points)


def exploration_rounds_for_full_coverage(n_ranks: int, spec: CpuSpec = XEON_E5_2670) -> int:
    """Iterations needed for every configuration to be profiled once."""
    n_cfg = len(enumerate_configurations(spec))
    if n_ranks >= n_cfg:
        return 1
    rounds = 1
    plan = ExplorationPlan(spec=spec, n_ranks=n_ranks)
    while plan.coverage_after(rounds) < 1.0:
        rounds += 1
        if rounds > n_cfg:  # round-robin always terminates by then
            break
    return rounds
