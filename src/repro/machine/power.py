"""Analytic socket power model.

Socket power decomposes into an uncore component (L3, memory controller,
QPI — grows with a task's memory intensity), per-core leakage, and per-core
dynamic power that scales as ``f^gamma`` with the usual gamma between 2 and
3 (voltage tracks frequency, P = C V^2 f).  Clock modulation gates the core
clocks for a fraction of each 10 µs window, removing dynamic power but not
leakage during the gated fraction.

Calibration: with the default parameters a fully-active 8-thread task spans
roughly 19 W (1.2 GHz) to 52 W (2.6 GHz) per socket, matching the operating
range implied by the paper's 30-80 W per-socket cap sweep and Figure 1's
10-60 W axis for a CoMD task across all configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cpu import CpuSpec, XEON_E5_2670

__all__ = ["PowerModelParams", "SocketPowerModel", "DEFAULT_POWER_PARAMS"]


@dataclass(frozen=True)
class PowerModelParams:
    """Constants of the socket power model (all watts except the exponent).

    Attributes
    ----------
    p_uncore_idle:
        Uncore power with the memory system quiescent.
    p_uncore_mem:
        Additional uncore power at full memory intensity (DRAM + controller
        activity attributed to the socket by RAPL's PKG domain).
    p_core_leak:
        Static (leakage) power per active core; unaffected by frequency or
        clock modulation.
    p_core_dyn_max:
        Dynamic power per core at ``fmax`` with activity factor 1.
    freq_exponent:
        Exponent of the dynamic-power-vs-frequency law.
    p_idle_socket:
        Package power of a fully idle (all cores sleeping) socket; the floor
        seen while a rank blocks inside MPI with no threads spinning.
    """

    p_uncore_idle: float = 7.0
    p_uncore_mem: float = 6.0
    p_core_leak: float = 0.8
    p_core_dyn_max: float = 4.8
    freq_exponent: float = 2.4
    p_idle_socket: float = 5.0

    def __post_init__(self) -> None:
        for name in (
            "p_uncore_idle",
            "p_uncore_mem",
            "p_core_leak",
            "p_core_dyn_max",
            "p_idle_socket",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.freq_exponent < 1.0:
            raise ValueError("freq_exponent below 1 is unphysical")


DEFAULT_POWER_PARAMS = PowerModelParams()


class SocketPowerModel:
    """Power model for one physical socket, including its efficiency factor.

    Parameters
    ----------
    spec:
        The CPU specification (frequency range, core count).
    params:
        Power-model constants.
    efficiency:
        Per-socket manufacturing variability multiplier (see
        :mod:`repro.machine.variability`); applied to the entire active
        power, as leakier silicon draws more in every component.
    """

    def __init__(
        self,
        spec: CpuSpec = XEON_E5_2670,
        params: PowerModelParams = DEFAULT_POWER_PARAMS,
        efficiency: float = 1.0,
    ) -> None:
        if efficiency <= 0:
            raise ValueError(f"efficiency must be positive, got {efficiency}")
        self.spec = spec
        self.params = params
        self.efficiency = float(efficiency)

    # ------------------------------------------------------------------
    def core_dynamic_power(self, freq_ghz: float, activity: float = 1.0) -> float:
        """Dynamic power of one active core at the given frequency."""
        if freq_ghz <= 0:
            raise ValueError(f"freq_ghz must be positive, got {freq_ghz}")
        p = self.params
        rel = freq_ghz / self.spec.fmax_ghz
        return activity * p.p_core_dyn_max * rel**p.freq_exponent

    def power(
        self,
        freq_ghz: float,
        threads: int,
        activity: float = 1.0,
        mem_intensity: float = 0.0,
        duty: float = 1.0,
    ) -> float:
        """Average socket power for a task running in a given configuration.

        Parameters
        ----------
        freq_ghz:
            Operating frequency (a P-state, or any value for the continuous
            relaxation used by the LP).
        threads:
            Number of active OpenMP threads (inactive cores sleep).
        activity:
            Per-task dynamic activity factor kappa (instruction mix).
        mem_intensity:
            Fraction in [0, 1] of full memory-system activity; scales the
            uncore's memory component.
        duty:
            Clock-modulation duty cycle; dynamic power and memory activity
            only accrue for the running fraction of each window.
        """
        if not (1 <= threads <= self.spec.cores):
            raise ValueError(
                f"threads must be in [1, {self.spec.cores}], got {threads}"
            )
        if not (0.0 <= mem_intensity <= 1.0):
            raise ValueError(f"mem_intensity must be in [0,1], got {mem_intensity}")
        if not (0.0 < duty <= 1.0):
            raise ValueError(f"duty must be in (0,1], got {duty}")
        if activity < 0:
            raise ValueError(f"activity must be >= 0, got {activity}")
        p = self.params
        uncore = p.p_uncore_idle + p.p_uncore_mem * mem_intensity * duty
        per_core = p.p_core_leak + self.core_dynamic_power(freq_ghz, activity) * duty
        return self.efficiency * (uncore + threads * per_core)

    def idle_power(self) -> float:
        """Package power while the rank blocks in MPI with no work."""
        return self.efficiency * self.params.p_idle_socket

    # ------------------------------------------------------------------
    def min_power(self, threads: int, activity: float, mem_intensity: float) -> float:
        """Lowest achievable *running* power (lowest P-state, full duty)."""
        return self.power(self.spec.fmin_ghz, threads, activity, mem_intensity)

    def max_power(self, threads: int, activity: float, mem_intensity: float) -> float:
        """Highest achievable power (highest P-state)."""
        return self.power(self.spec.fmax_ghz, threads, activity, mem_intensity)

    def frequency_for_power(
        self,
        target_w: float,
        threads: int,
        activity: float = 1.0,
        mem_intensity: float = 0.0,
    ) -> float:
        """Invert the power model: continuous frequency drawing ``target_w``.

        Returns a frequency clamped into the DVFS range; callers that need
        sub-``fmin`` operation must use duty-cycle modulation instead (see
        :mod:`repro.machine.rapl`).
        """
        p = self.params
        uncore = p.p_uncore_idle + p.p_uncore_mem * mem_intensity
        base = self.efficiency * (uncore + threads * p.p_core_leak)
        dyn_budget = target_w - base
        denom = self.efficiency * threads * activity * p.p_core_dyn_max
        if dyn_budget <= 0 or denom <= 0:
            return self.spec.fmin_ghz
        rel = (dyn_budget / denom) ** (1.0 / p.freq_exponent)
        return self.spec.clamp_frequency(rel * self.spec.fmax_ghz)
