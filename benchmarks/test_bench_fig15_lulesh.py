"""Figure 15: LULESH — LP and Conductor improvement vs Static.

Paper: the LP shows >14% potential at every cap (35.6% at 40 W) because
Static's firmware-pinned 8 threads lose to cache contention; Conductor
reaches 99% of the LP's performance by dropping to 4-5 threads.
"""

from conftest import engage, improvements


def test_fig15_regeneration(benchmark, sweeps):
    rows = benchmark(
        lambda: [
            (r.cap_per_socket_w, r.lp_vs_static_pct, r.conductor_vs_static_pct)
            for r in sweeps["lulesh"]
        ]
    )
    assert len(rows) == 5


def test_fig15_floor_everywhere(benchmark, sweeps):
    """>14% at all tested caps — Static's thread policy is simply wrong."""
    engage(benchmark)
    vals = improvements(sweeps["lulesh"], "lp_vs_static_pct")
    assert min(vals) > 14.0


def test_fig15_peak_at_40w(benchmark, sweeps):
    """Paper: 35.6% potential speedup at 40 W/socket, the sweep's max."""
    engage(benchmark)
    vals = improvements(sweeps["lulesh"], "lp_vs_static_pct")
    assert vals[0] == max(vals)
    assert 25.0 < vals[0] < 55.0


def test_fig15_conductor_captures_nearly_all(benchmark, sweeps):
    """Conductor achieves ~99% of the LP's gain (paper) — here >=85% of
    the LP-vs-Static improvement at every cap."""
    engage(benchmark)
    for r in sweeps["lulesh"]:
        if not r.schedulable:
            continue
        assert r.conductor_vs_static_pct > 0.85 * r.lp_vs_static_pct - 2.0
        assert r.lp_vs_conductor_pct < 8.0
