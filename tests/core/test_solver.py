"""Unit tests for the LP/MILP assembly layer."""

import types

import numpy as np
import pytest

from repro.core import FrozenProgram, LinearProgram, LpStatus


class TestVariables:
    def test_duplicate_name_rejected(self):
        lp = LinearProgram()
        lp.add_var("x")
        with pytest.raises(ValueError):
            lp.add_var("x")

    def test_bad_bounds_rejected(self):
        lp = LinearProgram()
        with pytest.raises(ValueError):
            lp.add_var("x", lb=2.0, ub=1.0)

    def test_lookup(self):
        lp = LinearProgram()
        i = lp.add_var("x")
        assert lp.var("x") == i


class TestConstraints:
    def test_empty_rejected(self):
        lp = LinearProgram()
        with pytest.raises(ValueError):
            lp.add_constraint({})

    def test_inverted_bounds_rejected(self):
        lp = LinearProgram()
        x = lp.add_var("x")
        with pytest.raises(ValueError):
            lp.add_constraint({x: 1.0}, lb=2.0, ub=1.0)

    def test_duplicate_indices_accumulate(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=10.0)
        lp.add_le({x: 1.0}, 4.0)
        lp.set_objective({x: -1.0})
        sol = lp.solve()
        assert sol.x[x] == pytest.approx(4.0)


class TestLpSolve:
    def test_simple_lp(self):
        # min -x - y  s.t. x + y <= 3, x <= 2, y <= 2
        lp = LinearProgram()
        x = lp.add_var("x", ub=2.0)
        y = lp.add_var("y", ub=2.0)
        lp.add_le({x: 1.0, y: 1.0}, 3.0)
        lp.set_objective({x: -1.0, y: -1.0})
        sol = lp.solve()
        assert sol.status is LpStatus.OPTIMAL
        assert sol.objective == pytest.approx(-3.0)

    def test_two_sided_constraint(self):
        lp = LinearProgram()
        x = lp.add_var("x")
        lp.add_constraint({x: 1.0}, lb=2.0, ub=5.0)
        lp.set_objective({x: 1.0})
        sol = lp.solve()
        assert sol.x[x] == pytest.approx(2.0)

    def test_equality(self):
        lp = LinearProgram()
        x = lp.add_var("x")
        y = lp.add_var("y")
        lp.add_eq({x: 1.0, y: 1.0}, 4.0)
        lp.set_objective({x: 1.0, y: 2.0})
        sol = lp.solve()
        assert sol.x[x] == pytest.approx(4.0)
        assert sol.x[y] == pytest.approx(0.0)

    def test_infeasible(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=1.0)
        lp.add_ge({x: 1.0}, 5.0)
        lp.set_objective({x: 1.0})
        assert lp.solve().status is LpStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram()
        x = lp.add_var("x", lb=-np.inf)
        lp.set_objective({x: 1.0})
        assert lp.solve().status in (LpStatus.UNBOUNDED, LpStatus.ERROR)


class TestMilpSolve:
    def test_integrality_enforced(self):
        # max x + y s.t. 2x + 3y <= 8, integers -> (4,0) fractional (1,2) int
        lp = LinearProgram()
        x = lp.add_var("x", ub=10.0, integer=True)
        y = lp.add_var("y", ub=10.0, integer=True)
        lp.add_le({x: 2.0, y: 3.0}, 8.9)
        lp.set_objective({x: -1.0, y: -1.0})
        sol = lp.solve()
        assert sol.status is LpStatus.OPTIMAL
        assert sol.x[x] == pytest.approx(round(sol.x[x]))
        assert sol.x[y] == pytest.approx(round(sol.x[y]))

    def test_is_mip_flag(self):
        lp = LinearProgram()
        lp.add_var("x")
        assert not lp.is_mip
        lp.add_var("b", ub=1.0, integer=True)
        assert lp.is_mip

    def test_binary_knapsack(self):
        values = [6, 5, 4]
        weights = [4, 3, 2]
        lp = LinearProgram()
        xs = [lp.add_var(f"x{i}", ub=1.0, integer=True) for i in range(3)]
        lp.add_le({x: w for x, w in zip(xs, weights)}, 5.0)
        lp.set_objective({x: -v for x, v in zip(xs, values)})
        sol = lp.solve()
        assert sol.objective == pytest.approx(-9.0)  # items 1+2 (5+4)


class TestCounts:
    def test_sizes_tracked(self):
        lp = LinearProgram()
        lp.add_var("a")
        lp.add_var("b")
        lp.add_le({0: 1.0}, 1.0)
        assert lp.n_vars == 2
        assert lp.n_constraints == 1


def _limit_hit_result(*args, **kwargs):
    """What HiGHS hands back when it stops on an iteration/time limit:
    status 1, no incumbent."""
    return types.SimpleNamespace(
        status=1, x=None, fun=None, message="time limit reached"
    )


class TestStatusMapping:
    """Termination states that only show up under resource limits."""

    @pytest.fixture(autouse=True)
    def _force_fallback(self, monkeypatch):
        # These tests stub sopt.linprog/milp; route LP solves through the
        # scipy fallback instead of the persistent-HiGHS fast path.
        import repro.core.solver as solver_mod

        monkeypatch.setattr(solver_mod, "_HIGHS_DIRECT", False)

    def _lp(self, integer=False):
        lp = LinearProgram()
        x = lp.add_var("x", ub=2.0, integer=integer)
        lp.add_le({x: 1.0}, 1.5)
        lp.set_objective({x: -1.0})
        return lp

    def test_limit_maps_to_error_lp(self, monkeypatch):
        import repro.core.solver as solver_mod

        monkeypatch.setattr(solver_mod.sopt, "linprog", _limit_hit_result)
        sol = self._lp().solve(time_limit_s=1e-9)
        assert sol.status is LpStatus.ERROR
        assert not sol.ok
        assert sol.x.size == 0  # x=None becomes an empty vector
        assert np.isnan(sol.objective)  # fun=None becomes nan
        assert "time limit" in sol.message

    def test_limit_maps_to_error_milp(self, monkeypatch):
        import repro.core.solver as solver_mod

        monkeypatch.setattr(solver_mod.sopt, "milp", _limit_hit_result)
        sol = self._lp(integer=True).solve(time_limit_s=1e-9)
        assert sol.status is LpStatus.ERROR
        assert sol.x.size == 0
        assert np.isnan(sol.objective)

    def test_numerical_trouble_maps_to_error(self, monkeypatch):
        import repro.core.solver as solver_mod

        def trouble(*args, **kwargs):
            return types.SimpleNamespace(
                status=4, x=None, fun=None, message="numerical difficulties"
            )

        monkeypatch.setattr(solver_mod.sopt, "linprog", trouble)
        assert self._lp().solve().status is LpStatus.ERROR

    def test_time_limit_forwarded_to_linprog(self, monkeypatch):
        import repro.core.solver as solver_mod

        captured = {}

        def spy(*args, **kwargs):
            captured.update(kwargs.get("options", {}))
            return types.SimpleNamespace(
                status=0, x=np.array([1.5]), fun=-1.5, message="ok"
            )

        monkeypatch.setattr(solver_mod.sopt, "linprog", spy)
        sol = self._lp().solve(time_limit_s=7.5)
        assert sol.status is LpStatus.OPTIMAL
        assert captured["time_limit"] == 7.5

    def test_time_limit_forwarded_to_milp(self, monkeypatch):
        import repro.core.solver as solver_mod

        captured = {}

        def spy(*args, **kwargs):
            captured.update(kwargs.get("options", {}))
            return types.SimpleNamespace(
                status=0, x=np.array([1.0]), fun=-1.0, message="ok"
            )

        monkeypatch.setattr(solver_mod.sopt, "milp", spy)
        sol = self._lp(integer=True).solve(time_limit_s=3.0)
        assert sol.status is LpStatus.OPTIMAL
        assert captured["time_limit"] == 3.0

    def test_no_limit_means_no_option(self, monkeypatch):
        import repro.core.solver as solver_mod

        captured = {}

        def spy(*args, **kwargs):
            captured.update(kwargs.get("options", {}))
            return types.SimpleNamespace(
                status=0, x=np.array([1.5]), fun=-1.5, message="ok"
            )

        monkeypatch.setattr(solver_mod.sopt, "linprog", spy)
        self._lp().solve()
        assert "time_limit" not in captured


class TestDirectHighsPath:
    """The persistent-HiGHS fast path must be a pure speedup: same
    solutions as the scipy-linprog fallback, bit for bit."""

    def _capped(self, cap):
        lp = LinearProgram()
        x = lp.add_var("x", ub=10.0)
        y = lp.add_var("y", ub=10.0)
        lp.add_le({x: 1.0, y: 2.0}, cap, tag="cap")
        lp.add_ge({x: 1.0, y: 1.0}, 1.0)
        lp.set_objective({x: -1.0, y: -1.0})
        return lp

    def test_direct_matches_fallback_exactly(self, monkeypatch):
        import repro.core.solver as solver_mod

        if not solver_mod._HIGHS_DIRECT:
            pytest.skip("scipy build without accessible HiGHS bindings")
        for cap in (3.0, 8.0, 14.0):
            direct = self._capped(1.0).freeze().solve(rhs={"cap": cap})
            monkeypatch.setattr(solver_mod, "_HIGHS_DIRECT", False)
            fallback = self._capped(1.0).freeze().solve(rhs={"cap": cap})
            monkeypatch.undo()
            assert direct.status is fallback.status
            assert direct.objective == fallback.objective
            assert np.array_equal(direct.x, fallback.x)

    def test_handle_built_lazily_and_reused(self):
        import repro.core.solver as solver_mod

        if not solver_mod._HIGHS_DIRECT:
            pytest.skip("scipy build without accessible HiGHS bindings")
        frozen = self._capped(5.0).freeze()
        assert frozen._direct is None
        frozen.solve()
        handle = frozen._direct
        assert handle is not None
        frozen.solve(rhs={"cap": 7.0})
        assert frozen._direct is handle

    def test_time_limit_does_not_leak_between_solves(self):
        import repro.core.solver as solver_mod

        if not solver_mod._HIGHS_DIRECT:
            pytest.skip("scipy build without accessible HiGHS bindings")
        frozen = self._capped(5.0).freeze()
        limited = frozen.solve(time_limit_s=30.0)
        unlimited = frozen.solve()
        assert limited.status is LpStatus.OPTIMAL
        assert unlimited.status is LpStatus.OPTIMAL
        assert limited.objective == unlimited.objective

    def test_infeasible_on_direct_path(self):
        import repro.core.solver as solver_mod

        if not solver_mod._HIGHS_DIRECT:
            pytest.skip("scipy build without accessible HiGHS bindings")
        lp = LinearProgram()
        x = lp.add_var("x", ub=1.0)
        lp.add_ge({x: 1.0}, 5.0)
        lp.set_objective({x: 1.0})
        sol = lp.freeze().solve()
        assert sol.status is LpStatus.INFEASIBLE
        assert sol.x.size == 0
        assert np.isnan(sol.objective)

    def test_fallback_flag_routes_to_linprog(self, monkeypatch):
        import repro.core.solver as solver_mod

        calls = []

        def spy(*args, **kwargs):
            calls.append(kwargs)
            return types.SimpleNamespace(
                status=0, x=np.array([1.0, 0.0]), fun=-1.0, message="ok"
            )

        monkeypatch.setattr(solver_mod, "_HIGHS_DIRECT", False)
        monkeypatch.setattr(solver_mod.sopt, "linprog", spy)
        self._capped(5.0).freeze().solve()
        assert len(calls) == 1


class TestFrozenProgram:
    def _capped(self, cap):
        lp = LinearProgram()
        x = lp.add_var("x", ub=10.0)
        lp.add_le({x: 1.0}, cap, tag="cap")
        lp.set_objective({x: -1.0})
        return lp

    def test_parametric_matches_rebuild(self):
        frozen = self._capped(1.0).freeze()
        for cap in (2.0, 5.0, 3.5):
            para = frozen.solve(rhs={"cap": cap})
            fresh = self._capped(cap).solve()
            assert para.objective == fresh.objective
            assert np.array_equal(para.x, fresh.x)
        assert frozen.n_solves == 3

    def test_base_bounds_untouched_by_override(self):
        frozen = self._capped(4.0).freeze()
        assert frozen.solve(rhs={"cap": 1.0}).objective == pytest.approx(-1.0)
        # The override is per solve: the next solve sees the build-time cap.
        assert frozen.solve().objective == pytest.approx(-4.0)

    def test_unknown_tag_rejected(self):
        frozen = self._capped(4.0).freeze()
        with pytest.raises(KeyError, match="no constraint rows tagged"):
            frozen.solve(rhs={"budget": 1.0})

    def test_nonfinite_rhs_rejected(self):
        frozen = self._capped(4.0).freeze()
        with pytest.raises(ValueError, match="finite"):
            frozen.solve(rhs={"cap": np.inf})

    def test_equality_row_override_moves_both_bounds(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=10.0)
        lp.add_eq({x: 1.0}, 2.0, tag="pin")
        lp.set_objective({x: 1.0})
        frozen = lp.freeze()
        assert frozen.solve(rhs={"pin": 7.0}).x[0] == pytest.approx(7.0)

    def test_ge_row_override(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=10.0)
        lp.add_ge({x: 1.0}, 2.0, tag="floor")
        lp.set_objective({x: 1.0})
        frozen = lp.freeze()
        assert frozen.solve(rhs={"floor": 6.0}).x[0] == pytest.approx(6.0)

    def test_tags_and_rows(self):
        frozen = self._capped(4.0).freeze()
        assert isinstance(frozen, FrozenProgram)
        assert frozen.tags == ("cap",)
        assert list(frozen.rows_for("cap")) == [0]
        assert frozen.rows_for("nope").size == 0

    def test_counts_match_builder(self):
        lp = self._capped(4.0)
        frozen = lp.freeze()
        assert frozen.n_vars == lp.n_vars
        assert frozen.n_constraints == lp.n_constraints
        assert not frozen.is_mip

    def test_unconstrained_program_freezes(self):
        # No finite row bounds at all: the one-sided split is empty and
        # linprog gets A_ub=None.
        lp = LinearProgram()
        x = lp.add_var("x", ub=3.0)
        lp.set_objective({x: -1.0})
        sol = lp.freeze().solve()
        assert sol.x[x] == pytest.approx(3.0)
