"""Convenience builder for application DAGs.

Maintains one "current vertex" per rank and appends compute tasks, messages
and collectives as the program advances — the same shape the tracer
produces from a simulated run, but usable directly for synthetic DAGs in
tests and for the paper's two-rank flow-ILP benchmark.

A subtlety worth stating: a compute edge connects the rank's previous MPI
event to its next one.  When the next event is a shared collective vertex,
the edge's destination is the collective itself; the collective's network
cost is modeled as a message edge from a per-rank *enter* vertex so that
task time and wire time stay separately visible to the LP.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.performance import TaskKernel
from .graph import TaskGraph, VertexKind

__all__ = ["DagBuilder"]


@dataclass
class _PendingRecv:
    """An Irecv posted but not yet waited on."""

    request_id: int
    message_src_vertex: int | None  # filled when the matching send appears


class DagBuilder:
    """Incrementally construct a :class:`TaskGraph`.

    All ranks begin at a shared INIT vertex.  Each rank then alternates
    compute tasks and MPI events; :meth:`finalize` joins every rank into a
    shared FINALIZE vertex (preceded by that rank's last compute edge, if
    one is pending).
    """

    def __init__(self, n_ranks: int) -> None:
        self.graph = TaskGraph(n_ranks)
        self._init = self.graph.add_vertex(VertexKind.INIT, label="MPI_Init")
        self._current: list[int] = [self._init.id] * n_ranks
        self._pending_kernel: list[TaskKernel | None] = [None] * n_ranks
        self._pending_iteration: list[int] = [-1] * n_ranks
        self._pending_label: list[str] = [""] * n_ranks
        self._finalized = False

    # ------------------------------------------------------------------
    def compute(
        self, rank: int, kernel: TaskKernel, iteration: int = -1, label: str = ""
    ) -> None:
        """Queue a compute task on a rank; it is attached at the next event.

        Consecutive :meth:`compute` calls without an intervening event merge
        into one task (as a real trace would see them — there is no MPI call
        separating them).
        """
        self._check_open(rank)
        pending = self._pending_kernel[rank]
        if pending is not None:
            kernel = _merge_kernels(pending, kernel)
        self._pending_kernel[rank] = kernel
        if iteration >= 0:
            self._pending_iteration[rank] = iteration
        if label:
            self._pending_label[rank] = label

    def _flush_compute(self, rank: int, dst_vertex: int) -> None:
        kernel = self._pending_kernel[rank]
        if kernel is None:
            return
        self.graph.add_compute(
            src=self._current[rank],
            dst=dst_vertex,
            rank=rank,
            kernel=kernel,
            iteration=self._pending_iteration[rank],
            label=self._pending_label[rank],
        )
        self._pending_kernel[rank] = None
        self._pending_iteration[rank] = -1
        self._pending_label[rank] = ""

    def event(self, rank: int, kind: VertexKind, label: str = "",
               iteration: int = -1) -> int:
        """Create a per-rank event vertex, attaching any queued compute.

        Public because the tracer drives the builder op-by-op.
        """
        v = self.graph.add_vertex(kind, rank=rank, label=label, iteration=iteration)
        self._flush_compute(rank, v.id)
        if not self.graph.in_edges(v.id):
            # No compute was pending: add a zero-cost ordering message so
            # the event is still chained after the rank's previous event.
            self.graph.add_message(self._current[rank], v.id, 0.0,
                                   label="program-order")
        self._current[rank] = v.id
        return v.id

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, duration_s: float, size_bytes: int = 0,
             iteration: int = -1) -> tuple[int, int]:
        """A matched (blocking) send/recv pair; returns the two vertex ids.

        The receive completes no earlier than send-initiation plus wire
        time; a zero-length ordering edge is *not* added in the reverse
        direction (eager-protocol semantics: the sender does not wait).
        """
        sv = self.event(src, VertexKind.SEND, label=f"send->{dst}",
                         iteration=iteration)
        rv = self.event(dst, VertexKind.RECV, label=f"recv<-{src}",
                         iteration=iteration)
        self.graph.add_message(sv, rv, duration_s, size_bytes,
                               iteration=iteration, label=f"msg {src}->{dst}")
        return sv, rv

    def isend(self, src: int, dst: int, iteration: int = -1) -> int:
        """Nonblocking send initiation; pair with :meth:`recv_from`."""
        return self.event(src, VertexKind.ISEND, label=f"isend->{dst}",
                           iteration=iteration)

    def recv_from(self, dst: int, send_vertex: int, duration_s: float,
                  size_bytes: int = 0, iteration: int = -1) -> int:
        """Blocking receive matching a previously created isend vertex."""
        rv = self.event(dst, VertexKind.RECV, iteration=iteration,
                         label="recv")
        self.graph.add_message(send_vertex, rv, duration_s, size_bytes,
                               iteration=iteration)
        return rv

    def wait(self, rank: int, iteration: int = -1) -> int:
        """MPI_Wait completion event on a rank."""
        return self.event(rank, VertexKind.WAIT, label="wait",
                           iteration=iteration)

    def collective(
        self,
        label: str = "allreduce",
        duration_s: float = 0.0,
        ranks: list[int] | None = None,
        iteration: int = -1,
    ) -> int:
        """A collective across ``ranks`` (default: all).

        Every participant's queued compute terminates at a per-rank enter
        vertex, a message edge of the collective's wire time connects each
        enter vertex to the shared completion vertex, and all participants
        resume from the shared vertex simultaneously.
        """
        participants = list(range(self.graph.n_ranks)) if ranks is None else ranks
        if not participants:
            raise ValueError("collective needs at least one participant")
        shared = self.graph.add_vertex(VertexKind.COLLECTIVE, label=label,
                                       iteration=iteration)
        for r in participants:
            self._check_open(r)
            enter = self.event(r, VertexKind.COLLECTIVE, label=f"{label}-enter",
                                iteration=iteration)
            self.graph.add_message(enter, shared.id, duration_s,
                                   iteration=iteration, label=f"{label}-wire")
            self._current[r] = shared.id
        return shared.id

    def pcontrol(self, iteration: int) -> None:
        """Iteration boundary marker — implemented as a zero-cost barrier.

        The paper's benchmarks call MPI_Pcontrol at every iteration boundary
        purely as an annotation; we give it barrier semantics matching the
        synchronous power-reallocation points of Conductor.
        """
        self.collective(label=f"pcontrol[{iteration}]", duration_s=0.0,
                        iteration=iteration)

    def finalize(self) -> TaskGraph:
        """Join all ranks into FINALIZE and return the validated graph."""
        if self._finalized:
            raise RuntimeError("finalize() called twice")
        fin = self.graph.add_vertex(VertexKind.FINALIZE, label="MPI_Finalize")
        for r in range(self.graph.n_ranks):
            had_compute = self._pending_kernel[r] is not None
            self._flush_compute(r, fin.id)
            if not had_compute and self._current[r] != fin.id:
                self.graph.add_message(self._current[r], fin.id, 0.0,
                                       label="finalize-join")
            self._current[r] = fin.id
        self._finalized = True
        self.graph.validate()
        return self.graph

    # ------------------------------------------------------------------
    def _check_open(self, rank: int) -> None:
        if self._finalized:
            raise RuntimeError("builder already finalized")
        if not (0 <= rank < self.graph.n_ranks):
            raise ValueError(f"rank {rank} out of range")


def _merge_kernels(a: TaskKernel, b: TaskKernel) -> TaskKernel:
    """Fuse two back-to-back kernels into one task (work adds, knobs blend)."""
    wa, wb = a.total_reference_seconds, b.total_reference_seconds
    total = wa + wb
    blend = lambda x, y: (x * wa + y * wb) / total  # noqa: E731
    return TaskKernel(
        cpu_seconds=a.cpu_seconds + b.cpu_seconds,
        mem_seconds=a.mem_seconds + b.mem_seconds,
        parallel_fraction=blend(a.parallel_fraction, b.parallel_fraction),
        mem_parallel_fraction=blend(a.mem_parallel_fraction, b.mem_parallel_fraction),
        bw_saturation_threads=min(a.bw_saturation_threads, b.bw_saturation_threads),
        contention_threshold=min(a.contention_threshold, b.contention_threshold),
        contention_penalty=max(a.contention_penalty, b.contention_penalty),
        activity=blend(a.activity, b.activity),
        mem_intensity=blend(a.mem_intensity, b.mem_intensity),
        name=a.name or b.name,
    )
