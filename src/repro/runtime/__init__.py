"""Power-allocation runtimes evaluated against the LP bound."""

from .adagio import SlackEstimator, slowest_fitting_point, task_key
from .adagio_policy import AdagioPolicy
from .conductor import ConductorConfig, ConductorPolicy
from .explorer import ExplorationPlan, exploration_rounds_for_full_coverage
from .selection_only import SelectionOnlyPolicy
from .static import StaticPolicy

__all__ = [
    "AdagioPolicy",
    "ConductorConfig",
    "ConductorPolicy",
    "ExplorationPlan",
    "SelectionOnlyPolicy",
    "SlackEstimator",
    "StaticPolicy",
    "exploration_rounds_for_full_coverage",
    "slowest_fitting_point",
    "task_key",
]
