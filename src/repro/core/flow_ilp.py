"""The flow-based ILP formulation (paper Appendix, eqs. 14-29).

Power is modeled as a *flow* through time: an artificial source task (id 0,
duration 0, power PC) at time zero, an artificial sink (id N+1) after
MPI_Finalize, and binary sequencing variables ``x[i,j]`` (task i finishes
before task j starts) that gate power-flow variables ``f[i,j]``.  Flow
conservation (eqs. 28-29) forces every task's power to be routed from
tasks that finished earlier, so any set of tasks overlapping in time can
draw at most PC in total — without fixing the event order, which is what
makes this formulation integer (and practically limited to <30-edge DAGs,
exactly as the paper reports).

Differences from the fixed-order LP, faithful to the paper:

* the solver chooses the event order (via x) instead of inheriting it;
* slack is *not* charged at task power — a task draws power only while
  executing (the paper assigns slack an observed constant; our machine
  model's observed slack draw is the idle floor, which we exclude from
  both formulations' power accounting for a like-for-like Figure 8).

Configuration fractions stay continuous over each task's convex frontier —
mid-task switching realizes any hull mixture, so integrality is needed
only in the sequencing variables.

The common equations (Fig. 4: vertex times, configuration simplices,
precedence) come from :func:`~.model.base_model`; only the sequencing and
flow machinery is built here, on top of the shared IR.

Implementation notes: eqs. 19-20 and 22 of the appendix place *slack*
edges, which this reproduction folds into its successor vertex; eq. 21
(tasks sharing a source vertex are never sequenced) is kept.  Big-M values
come from a serialized-workload horizon bound.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..dag.graph import TaskGraph
from ..exec.timing import span
from ..simulator.trace import Trace
from .model import (
    CompiledModel,
    ProblemInstance,
    base_model,
    build_problem_instance,
    extract_schedule,
)
from .schedule import PowerSchedule
from .solver import LpSolution, LpStatus

__all__ = ["FlowIlpResult", "solve_flow_ilp", "compile_flow_ilp",
           "MAX_FLOW_ILP_EDGES"]

#: Practical size guard mirroring the paper's observation that flow-ILP
#: instances beyond ~30 DAG edges are intractable.
MAX_FLOW_ILP_EDGES = 40


@dataclass
class FlowIlpResult:
    """Flow ILP outcome (schedule None when infeasible/limited out)."""

    schedule: PowerSchedule | None
    solution: LpSolution

    @property
    def feasible(self) -> bool:
        return self.schedule is not None

    @property
    def makespan_s(self) -> float:
        if self.schedule is None:
            raise RuntimeError("flow ILP was infeasible; no makespan")
        return self.schedule.objective_s


def _task_precedence_closure(graph: TaskGraph, tasks: list[int]) -> set[tuple[int, int]]:
    """Transitive closure TE over compute tasks: (i, j) if i must precede j.

    Task i precedes task j when a directed path runs from dst(i) to src(j)
    (possibly through message edges and other tasks).
    """
    n_v = graph.n_vertices
    reach = [set() for _ in range(n_v)]
    order = graph.topological_order()
    for vid in reversed(order):
        r = reach[vid]
        r.add(vid)
        for e in graph.out_edges(vid):
            r |= reach[e.dst]
    closure: set[tuple[int, int]] = set()
    for i in tasks:
        for j in tasks:
            if i == j:
                continue
            ei, ej = graph.edges[i], graph.edges[j]
            if ej.src in reach[ei.dst]:
                closure.add((i, j))
    return closure


def compile_flow_ilp(
    instance: ProblemInstance,
    cap_w: float,
    power_tiebreak: float = 1e-9,
) -> CompiledModel:
    """Compile the appendix's flow ILP from the shared IR."""
    if cap_w <= 0:
        raise ValueError(f"cap must be positive, got {cap_w}")
    graph = instance.graph
    frontiers = instance.convex
    fin_id = instance.fin_id

    tasks = [e.id for e in graph.compute_edges()]
    source, sink = -1, -2  # synthetic ids (paper's 0 and N+1)
    a0 = [source] + tasks          # A0   = A ∪ {0}
    an1 = tasks + [sink]           # AN+1 = A ∪ {N+1}
    aprime = [source] + tasks + [sink]

    # Common equations (Fig. 4): vertex times, config simplices, precedence.
    lp, v_idx, c_idx = base_model(
        instance,
        name=f"flow-ilp-{instance.trace.app.name}",
        edge_order=tasks,
    )

    # Horizon bound for big-M: everything serialized at slowest configs.
    horizon = sum(
        float(frontiers[t].durations.max()) for t in tasks
    ) + sum(e.duration_s for e in graph.message_edges())
    big_m = 2.0 * horizon + 1.0

    te = _task_precedence_closure(graph, tasks)

    # Sequencing binaries x[i,j] (eq. 14), with the fixed entries of
    # eqs. 15, 18, 21 and the source/sink orientation folded into bounds.
    x_idx: dict[tuple[int, int], int] = {}

    def fixed_x(i: int, j: int) -> float | None:
        if i == j:
            return 0.0                              # eq. 18
        if i == source:
            return 0.0 if j == source else 1.0      # source precedes all
        if j == source:
            return 0.0
        if j == sink:
            return 1.0                              # all precede the sink
        if i == sink:
            return 0.0
        if (i, j) in te:
            return 1.0                              # eq. 15
        if (j, i) in te:
            return 0.0
        ei, ej = graph.edges[i], graph.edges[j]
        if ei.src == ej.src:
            return 0.0                              # eq. 21 (common source)
        return None

    for i in aprime:
        for j in aprime:
            fixed = fixed_x(i, j)
            if fixed is None:
                x_idx[(i, j)] = lp.add_var(f"x{i}_{j}", 0.0, 1.0, integer=True)
            else:
                x_idx[(i, j)] = lp.add_var(f"x{i}_{j}", fixed, fixed, integer=True)

    # eq. 16: antisymmetry (only needed where both directions are free).
    for i, j in itertools.combinations(tasks, 2):
        lp.add_le(
            {x_idx[(i, j)]: 1.0, x_idx[(j, i)]: 1.0}, 1.0, label=f"anti{i}-{j}"
        )

    # eq. 17: transitivity x_ik >= x_ij + x_jk - 1 over task triples.
    for i, j, k in itertools.permutations(tasks, 3):
        lp.add_le(
            {
                x_idx[(i, j)]: 1.0,
                x_idx[(j, k)]: 1.0,
                x_idx[(i, k)]: -1.0,
            },
            1.0,
            label=f"trans{i}-{j}-{k}",
        )

    # eq. 23: big-M sequencing vs start times.  Task starts are the source
    # vertex times (eq. 4); source/sink pseudo-task starts get variables.
    s_source = lp.add_var("s_source", 0.0, 0.0)
    s_sink = lp.add_var("s_sink", 0.0, np.inf)
    lp.add_ge({s_sink: 1.0, v_idx[fin_id]: -1.0}, 0.0, label="sink-after-fin")

    def start_terms(i: int) -> dict[int, float]:
        if i == source:
            return {s_source: 1.0}
        if i == sink:
            return {s_sink: 1.0}
        return {v_idx[graph.edges[i].src]: 1.0}

    def duration_terms(i: int) -> dict[int, float]:
        if i in (source, sink):
            return {}                               # eq. 24: d = 0
        return {
            col: float(d)
            for col, d in zip(c_idx[i], frontiers[i].durations)
        }

    for i in aprime:
        for j in aprime:
            if i == j:
                continue
            xij = x_idx[(i, j)]
            # Skip rows whose x is fixed to 0 — they are vacuous.
            if lp.var_bounds(xij)[1] == 0.0:
                continue
            terms: dict[int, float] = {}
            for col, coeff in start_terms(j).items():
                terms[col] = terms.get(col, 0.0) + coeff
            for col, coeff in start_terms(i).items():
                terms[col] = terms.get(col, 0.0) - coeff
            for col, coeff in duration_terms(i).items():
                terms[col] = terms.get(col, 0.0) - coeff
            terms[xij] = terms.get(xij, 0.0) - big_m
            lp.add_ge(terms, -big_m, label=f"seq{i}-{j}")

    # Power flows (eqs. 25-29).  p_i is the linear expression
    # sum_j p_ij c_ij for tasks, PC for source and sink.  Note the cap
    # enters the *matrix* here (flow capacities), not just the RHS — the
    # flow ILP is not parametric in the cap the way the fixed-order LP is.
    pmax = {t: float(frontiers[t].powers.max()) for t in tasks}
    pmax[source] = cap_w
    pmax[sink] = cap_w

    f_idx: dict[tuple[int, int], int] = {}
    for i in aprime:
        for j in aprime:
            if i == j or j == source or i == sink:
                continue
            xij = x_idx[(i, j)]
            if lp.var_bounds(xij)[1] == 0.0:  # only admissible sequences
                continue
            f_idx[(i, j)] = lp.add_var(f"f{i}_{j}", 0.0, np.inf)
            # eq. 27 linearized with the constant capacity bound.
            lp.add_le(
                {f_idx[(i, j)]: 1.0, xij: -min(pmax[i], pmax[j])}, 0.0,
                label=f"cap{i}-{j}",
            )

    def power_terms(i: int, sign: float) -> dict[int, float]:
        if i in (source, sink):
            return {}
        return {
            col: sign * float(p)
            for col, p in zip(c_idx[i], frontiers[i].powers)
        }

    for i in a0:  # eq. 28: outgoing flow equals task power
        terms = {f: 1.0 for (a, b), f in f_idx.items() if a == i}
        rhs = cap_w if i == source else 0.0
        for col, coeff in power_terms(i, -1.0).items():
            terms[col] = terms.get(col, 0.0) + coeff
        lp.add_eq(terms, rhs, label=f"flow-out{i}")

    for j in an1:  # eq. 29: incoming flow equals task power
        terms = {f: 1.0 for (a, b), f in f_idx.items() if b == j}
        rhs = cap_w if j == sink else 0.0
        for col, coeff in power_terms(j, -1.0).items():
            terms[col] = terms.get(col, 0.0) + coeff
        lp.add_eq(terms, rhs, label=f"flow-in{j}")

    # Objective: minimize finalize time (+ tiny power tiebreak).
    objective: dict[int, float] = {v_idx[fin_id]: 1.0}
    if power_tiebreak > 0:
        for t in tasks:
            for col, p in zip(c_idx[t], frontiers[t].powers):
                objective[col] = objective.get(col, 0.0) + (
                    power_tiebreak * float(p)
                )
    lp.set_objective(objective)

    return CompiledModel(
        instance=instance,
        lp=lp,
        v_idx=v_idx,
        c_idx=c_idx,
        frontiers=frontiers,
        formulation="flow-ilp",
        cap_w=float(cap_w),
        solver_info={"formulation": "flow-ilp"},
    )


def solve_flow_ilp(
    trace: Trace,
    cap_w: float,
    power_tiebreak: float = 1e-9,
    time_limit_s: float | None = 120.0,
    max_edges: int = MAX_FLOW_ILP_EDGES,
    instance: ProblemInstance | None = None,
) -> FlowIlpResult:
    """Solve the appendix's flow ILP for a (small) traced application."""
    if cap_w <= 0:
        raise ValueError(f"cap must be positive, got {cap_w}")
    graph = trace.graph
    if graph.n_edges > max_edges:
        raise ValueError(
            f"flow ILP limited to {max_edges} DAG edges "
            f"(got {graph.n_edges}); use the fixed-order LP"
        )
    if instance is None:
        instance = build_problem_instance(trace)
    compiled = compile_flow_ilp(instance, cap_w, power_tiebreak=power_tiebreak)

    with span("solve"):
        solution = compiled.lp.solve(time_limit_s=time_limit_s)
    if solution.status is not LpStatus.OPTIMAL:
        return FlowIlpResult(schedule=None, solution=solution)

    schedule = extract_schedule(compiled, solution)
    return FlowIlpResult(schedule=schedule, solution=solution)
