"""SweepJournal: durability, torn-line tolerance, last-record-wins."""

from __future__ import annotations

import json

from repro.exec.checkpoint import JOURNAL_SCHEMA_VERSION, SweepJournal


class TestRoundTrip:
    def test_missing_file_is_empty(self, tmp_path):
        journal = SweepJournal(tmp_path / "missing.jsonl")
        assert journal.load() == {}
        assert len(journal) == 0

    def test_record_ok(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record_ok("k1", 50.0, {"cell": 1}, spec_hash="abc")
        records = journal.load()
        assert records["k1"]["status"] == "ok"
        assert records["k1"]["payload"] == {"cell": 1}
        assert records["k1"]["cap_per_socket_w"] == 50.0
        assert records["k1"]["spec_hash"] == "abc"

    def test_record_failed(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        failure = {"error_type": "ValueError", "error_message": "x", "attempts": 2}
        journal.record_failed("k1", 50.0, failure)
        records = journal.load()
        assert records["k1"]["status"] == "failed"
        assert records["k1"]["failure"] == failure

    def test_creates_parent_directories(self, tmp_path):
        journal = SweepJournal(tmp_path / "deep" / "dir" / "j.jsonl")
        journal.record_ok("k", 40.0, {})
        assert len(journal) == 1

    def test_one_canonical_json_line_per_record(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record_ok("k1", 40.0, {"a": 1})
        journal.record_ok("k2", 50.0, {"a": 2})
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert line == json.dumps(
                json.loads(line), sort_keys=True, separators=(",", ":")
            )


class TestTolerantLoad:
    def test_last_record_per_key_wins(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record_failed("k", 50.0, {"error_type": "E", "attempts": 1})
        journal.record_ok("k", 50.0, {"cell": "good"})
        records = journal.load()
        assert records["k"]["status"] == "ok"
        assert len(journal) == 1

    def test_torn_trailing_line_skipped(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record_ok("k1", 40.0, {})
        with (tmp_path / "j.jsonl").open("a") as fh:
            fh.write('{"schema": 1, "key": "k2", "status"')  # died mid-append
        assert set(journal.load()) == {"k1"}

    def test_unknown_schema_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        doc = {"schema": JOURNAL_SCHEMA_VERSION + 1, "key": "k", "status": "ok"}
        path.write_text(json.dumps(doc) + "\n")
        assert SweepJournal(path).load() == {}

    def test_non_dict_and_keyless_lines_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            "[1, 2]\n"
            + json.dumps({"schema": JOURNAL_SCHEMA_VERSION, "status": "ok"})
            + "\n\n"
        )
        assert SweepJournal(path).load() == {}
