"""Extension exhibits: the energy comparison and the sensitivity analysis.

Not paper tables — these regenerate the repository's two extension
exhibits (`repro-experiments energy` / `sensitivity`) and assert their
claims: the related-work energy objective really differs from the power
objective, and the headline conclusion survives model-constant changes.
"""

import math

import pytest

from repro.experiments import energy_comparison, sensitivity_analysis

from conftest import engage


@pytest.fixture(scope="module")
def energy():
    return energy_comparison(n_ranks=8, iterations=6)


@pytest.fixture(scope="module")
def sensitivity():
    return sensitivity_analysis(n_ranks=8)


def test_energy_regeneration(benchmark):
    result = benchmark.pedantic(
        energy_comparison, kwargs=dict(n_ranks=4, iterations=4),
        rounds=1, iterations=1,
    )
    assert len(result.rows) >= 3


def test_energy_orderings(benchmark, energy):
    engage(benchmark)
    _, t_max, e_max = energy.row("MaxPerformance")
    _, t_ada, e_ada = energy.row("Adagio")
    _, t_elp, e_elp = energy.row("Energy LP (0% slowdown)")
    # Adagio saves energy at (near-)zero slowdown; the LP bounds it.
    assert e_elp <= e_ada < e_max
    assert t_ada <= t_max * 1.02
    assert t_elp <= t_max * 1.001


def test_energy_power_cap_tradeoff(benchmark, energy):
    """The power-capped schedule: slower than everything, but also the
    least task energy (it runs low-power configurations throughout)."""
    engage(benchmark)
    capped = [r for r in energy.rows if r[0].startswith("Power LP")]
    assert capped, "power-capped row missing (cap infeasible?)"
    _, t_cap, e_cap = capped[0]
    _, t_max, e_max = energy.row("MaxPerformance")
    assert t_cap > t_max
    assert e_cap < e_max


def test_sensitivity_regeneration(benchmark):
    result = benchmark.pedantic(
        sensitivity_analysis,
        kwargs=dict(n_ranks=4, exponents=(2.0, 2.8), sigmas=(0.0, 0.08)),
        rounds=1, iterations=1,
    )
    assert all(not math.isnan(p) for _, _, p in result.rows)


def test_sensitivity_headline_robust(benchmark, sensitivity):
    """The reproduction's central claim survives every model variant."""
    engage(benchmark)
    for _, _, pct in sensitivity.rows:
        assert pct > 20.0


def test_sensitivity_levers_behave(benchmark, sensitivity):
    engage(benchmark)
    exps = sensitivity.values_for("freq_exponent")
    sigs = sensitivity.values_for("variability_sigma")
    # Cheaper frequency (lower exponent) widens the Static shortfall.
    assert exps[0] >= exps[-1] - 1e-9
    # Variability adds to the gain but is not its primary source.
    assert min(sigs) > 20.0
