"""Conductor: adaptive configuration selection + power reallocation (§4.2).

A reimplementation of the paper's run-time system (Marathe et al., ISC'15)
against the simulator.  Conductor's loop per the paper:

1. **Configuration exploration** — for the first iterations, ranks run
   deliberately heterogeneous configurations in parallel, building each
   task's power/performance profile; these iterations are discarded from
   all comparisons (§5.3 discards three).
2. **Adagio slack reclamation** — non-critical tasks are slowed into their
   measured slack, freeing power without moving the critical path.
3. **Power reallocation** — every ``realloc_period`` Pcontrol intervals
   (paper: 5-10), ranks with measured power headroom donate a bounded step
   of their allocation to the ranks estimated (from *noisy* measurements)
   to carry the critical path.  Each reallocation costs 566 µs, charged at
   the Pcontrol barrier.

The two pathologies the paper attributes Conductor's LP gap to are modeled
mechanistically rather than hard-coded: *thrashing* arises from the
bounded-step reallocation reacting to noisy measurements, and *critical-
path misidentification* (SP's regression) arises when load is so balanced
that measurement noise, not load, picks the "critical" rank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.configuration import ConfigPoint, Configuration
from ..machine.cpu import CpuSpec, XEON_E5_2670
from ..machine.frontiers import FrontierStore, NodeFrontierStore
from ..machine.performance import TaskKernel, TaskTimeModel
from ..machine.power import SocketPowerModel
from ..machine.rapl import RaplController
from ..obs.events import ReallocEvent
from ..obs.recorder import current_recorder
from ..simulator.engine import TaskRecord
from ..simulator.program import Application, ComputeOp, TaskRef
from .adagio import SlackEstimator, slowest_fitting_point

__all__ = ["ConductorPolicy", "ConductorConfig"]


@dataclass(frozen=True)
class ConductorConfig:
    """Tunables of the Conductor runtime (paper-derived defaults)."""

    exploration_iterations: int = 3
    realloc_period: int = 5
    step_w: float = 2.0
    donor_margin_w: float = 0.5
    receiver_fraction: float = 0.125  # top n/8 ranks receive power
    measurement_noise: float = 0.02
    adagio_safety: float = 0.9
    switch_overhead_s: float = 145e-6
    realloc_overhead_s: float = 566e-6
    min_switch_duration_s: float = 1e-3
    seed: int = 12345

    def __post_init__(self) -> None:
        if self.exploration_iterations < 0:
            raise ValueError("exploration_iterations must be >= 0")
        if self.realloc_period < 1:
            raise ValueError("realloc_period must be >= 1")
        if self.step_w <= 0:
            raise ValueError("step_w must be positive")
        if not (0 < self.receiver_fraction <= 1):
            raise ValueError("receiver_fraction must be in (0, 1]")
        if self.measurement_noise < 0:
            raise ValueError("measurement_noise must be >= 0")


class ConductorPolicy:
    """The Conductor runtime as an engine :class:`ConfigPolicy`."""

    @classmethod
    def oracle(
        cls,
        power_models: list[SocketPowerModel],
        job_cap_w: float,
        app: Application,
        spec: CpuSpec = XEON_E5_2670,
    ) -> "ConductorPolicy":
        """An idealized Conductor: noiseless measurements, reallocation
        every Pcontrol, unbounded steps, zero control overheads.

        This is the best *any* runtime making decisions at Pcontrol
        granularity from past-iteration data can do; its residual gap to
        the LP isolates what only an offline, event-granularity scheduler
        with "perfect knowledge of the system and applications" (paper
        §6.3) can capture — per-event power shifts and exact
        per-iteration workloads.
        """
        cfg = ConductorConfig(
            exploration_iterations=1,
            realloc_period=1,
            step_w=1e6,
            measurement_noise=0.0,
            switch_overhead_s=0.0,
            realloc_overhead_s=0.0,
            seed=0,
        )
        return cls(power_models, job_cap_w, app, spec=spec, config=cfg)

    def __init__(
        self,
        power_models: list[SocketPowerModel],
        job_cap_w: float,
        app: Application,
        spec: CpuSpec = XEON_E5_2670,
        config: ConductorConfig = ConductorConfig(),
        frontier_store: FrontierStore | NodeFrontierStore | None = None,
    ) -> None:
        if job_cap_w <= 0:
            raise ValueError(f"job cap must be positive, got {job_cap_w}")
        self.power_models = power_models
        self.spec = spec
        self.cfg = config
        self.job_cap_w = job_cap_w
        self.n_ranks = len(power_models)
        self.time_model = TaskTimeModel(spec)
        self.rapl = [RaplController(pm) for pm in power_models]
        self.rng = np.random.default_rng(config.seed)

        # Per-rank power allocation, initially uniform (like Static).
        self.alloc_w = np.full(self.n_ranks, job_cap_w / self.n_ranks)

        tpi = {
            r: sum(
                1
                for op in app.programs[r]
                if isinstance(op, ComputeOp) and op.iteration == 0
            )
            for r in range(self.n_ranks)
        }
        # Ranks whose iteration structure is unknown fall back to 1 task.
        self.tasks_per_iteration = {r: max(1, c) for r, c in tpi.items()}
        self.slack = SlackEstimator(self.tasks_per_iteration)

        # The shared frontier store: Conductor's profiling pass measures
        # the same (kernel, power model) spaces as every other consumer,
        # so a store handed in by the harness is a warm cache.
        self.frontiers = (
            frontier_store
            if frontier_store is not None
            else FrontierStore(power_models)
        )
        self._pcontrol_count = 0
        self.realloc_count = 0
        self.alloc_history: list[np.ndarray] = []

    # ------------------------------------------------------------------
    def _profiles(self, rank: int, kernel: TaskKernel) -> tuple[
        list[ConfigPoint], list[ConfigPoint]
    ]:
        prof = self.frontiers.profile(rank, kernel)
        return prof.points, prof.convex

    def _exploration_config(
        self, ref: TaskRef, kernel: TaskKernel, iteration: int
    ) -> Configuration:
        """Heterogeneous profiling configurations, kept under the uniform cap."""
        points, _ = self._profiles(ref.rank, kernel)
        budget = self.alloc_w[ref.rank]
        admissible = [p for p in points if p.power_w <= budget]
        if not admissible:
            return self.rapl[ref.rank].decide(
                kernel, self.power_models[ref.rank].spec.cores, budget
            ).config
        idx = (ref.rank + iteration * self.n_ranks + ref.seq) % len(admissible)
        return admissible[idx].config

    def configure(
        self,
        ref: TaskRef,
        kernel: TaskKernel,
        iteration: int,
        current: Configuration | None,
    ) -> Configuration:
        """Exploration config during warmup; then the fastest frontier
        point under the rank's allocation, Adagio-slowed into slack."""
        if 0 <= iteration < self.cfg.exploration_iterations:
            return self._exploration_config(ref, kernel, iteration)

        _, frontier = self._profiles(ref.rank, kernel)
        budget = self.alloc_w[ref.rank]
        admissible = [p for p in frontier if p.power_w <= budget]
        if not admissible:
            # Allocation below the cheapest configuration: fall back to
            # RAPL-style throttling at the frontier's thread count.
            threads = frontier[0].config.threads
            return self.rapl[ref.rank].decide(kernel, threads, budget).config

        chosen = admissible[-1]  # fastest under the budget
        key = task_key_for(ref, self.tasks_per_iteration[ref.rank])
        slack_s = self.slack.slack_estimate(key)
        if slack_s is not None:
            # Adagio: slow into the measured slack — anchored at the
            # fastest-achievable duration under the budget, so a task
            # slowed in a previous iteration springs back the moment its
            # slack disappears (no ratchet).
            allowed = chosen.duration_s + self.cfg.adagio_safety * slack_s
            chosen = slowest_fitting_point(admissible, allowed)

        if (
            current is not None
            and chosen.config != current
            and chosen.duration_s < self.cfg.min_switch_duration_s
        ):
            return current  # paper's 1 ms switch threshold
        return chosen.config

    # ------------------------------------------------------------------
    def on_pcontrol(self, iteration: int, records: list[TaskRecord]) -> float:
        """Update slack estimates; every ``realloc_period`` intervals run
        the power reallocation (566 us charged at the barrier)."""
        self._pcontrol_count += 1
        if not records:
            return 0.0
        if 0 <= iteration < self.cfg.exploration_iterations:
            return 0.0  # profiling bookkeeping is asynchronous
        self.slack.update(records, rng=self.rng, noise=self.cfg.measurement_noise)
        if self._pcontrol_count % self.cfg.realloc_period != 0:
            return 0.0
        recorder = current_recorder()
        before = (
            tuple(float(w) for w in self.alloc_w) if recorder is not None else ()
        )
        self._reallocate(records)
        self.realloc_count += 1
        self.alloc_history.append(self.alloc_w.copy())
        if recorder is not None:
            recorder.emit(ReallocEvent(
                ts_s=max(r.end_s for r in records),
                iteration=iteration,
                job_cap_w=self.job_cap_w,
                alloc_before_w=before,
                alloc_after_w=tuple(float(w) for w in self.alloc_w),
            ))
        return self.cfg.realloc_overhead_s

    def _reallocate(self, records: list[TaskRecord]) -> None:
        """One bounded-step power transfer from slack-rich ranks to the
        (noisily) estimated critical path.

        Donor/receiver identification follows the paper's description:
        after Adagio has slowed non-critical work, ranks that still show
        per-iteration *slack* are donors; ranks whose tasks run back-to-
        back into the barrier (near-zero slack) carry the critical path
        and receive.  Measurements are noisy, so on well-balanced
        applications (SP) jitter — not load — picks the critical set,
        which is precisely the misidentification pathology the paper
        reports.
        """
        noise = self.cfg.measurement_noise
        n = self.n_ranks
        busy = np.zeros(n)
        last_end = np.zeros(n)
        max_useful = np.zeros(n)
        rank_tasks: list[list[TaskRecord]] = [[] for _ in range(n)]
        iter_start = min(r.start_s for r in records)
        for rec in records:
            r = rec.ref.rank
            busy[r] += rec.duration_s
            last_end[r] = max(last_end[r], rec.end_s)
            rank_tasks[r].append(rec)
            _, frontier = self._profiles(r, rec.kernel)
            max_useful[r] = max(max_useful[r], frontier[-1].power_w)
        barrier = float(last_end.max())
        span = max(barrier - iter_start, 1e-12)
        earliness = barrier - last_end
        if noise > 0:
            busy = busy * self.rng.lognormal(0.0, noise, n)
            earliness = np.maximum(
                0.0, earliness + span * self.rng.normal(0.0, noise, n)
            )

        # Per-rank power requirement to arrive exactly at the barrier:
        # stretch each task's duration by the rank's measured earliness and
        # read the minimum sufficient power off the task's frontier.  The
        # allocation must cover the rank's hungriest task (tasks within a
        # rank run sequentially).
        needed = np.zeros(n)
        for r in range(n):
            if not rank_tasks[r]:
                needed[r] = self.alloc_w[r]
                continue
            stretch = 1.0
            if busy[r] > 0:
                stretch = 1.0 + self.cfg.adagio_safety * earliness[r] / busy[r]
            req = 0.0
            for rec in rank_tasks[r]:
                _, frontier = self._profiles(r, rec.kernel)
                point = slowest_fitting_point(frontier, rec.duration_s * stretch)
                req = max(req, point.power_w)
            needed[r] = req + self.cfg.donor_margin_w

        total_needed = float(needed.sum())
        if total_needed > self.job_cap_w:
            # Infeasible ask (harsh cap): squeeze everyone proportionally.
            target = needed * (self.job_cap_w / total_needed)
        else:
            # Waterfill the leftover onto loaded ranks — they convert extra
            # power into critical-path speedup — capped at each rank's
            # highest useful draw.
            target = needed.copy()
            leftover = self.job_cap_w - total_needed
            ceiling = np.where(max_useful > 0, max_useful, self.alloc_w)
            weights = busy / max(busy.sum(), 1e-12)
            # Two passes: weighted fill, then spill of over-ceiling excess.
            grant = np.minimum(leftover * weights, np.maximum(ceiling - target, 0))
            target += grant
            leftover -= float(grant.sum())
            if leftover > 1e-9:
                room = np.maximum(ceiling - target, 0)
                if float(room.sum()) > 0:
                    target += np.minimum(room, leftover * room / room.sum())

        # Bounded-step move toward the target (the paper's reallocation is
        # incremental; with noisy inputs this is where thrashing lives).
        step = self.cfg.step_w
        delta = np.clip(target - self.alloc_w, -step, step)
        # Conserve the job-level sum exactly: pair up positive and negative
        # moves so the cap is never exceeded.
        give = float(np.minimum(delta, 0).sum())  # <= 0
        take = float(np.maximum(delta, 0).sum())
        slack_w = max(0.0, self.job_cap_w - float(self.alloc_w.sum()))
        allowed = -give + slack_w
        if take > allowed and take > 0:
            delta[delta > 0] *= allowed / take
        self.alloc_w += delta

    def switch_cost_s(self) -> float:
        return self.cfg.switch_overhead_s


def task_key_for(ref: TaskRef, tasks_per_iteration: int) -> tuple[int, int]:
    """Recurring-task key straight from a TaskRef (mirrors adagio.task_key)."""
    return (ref.rank, ref.seq % max(1, tasks_per_iteration))
