"""Fault injection: deterministic selection, modes, bounded counts."""

from __future__ import annotations

import pickle

import pytest

from repro.exec.cache import SolverCache
from repro.exec.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    _unit,
)


def _double(item: int) -> int:
    return item * 2


def _key(item: int) -> str:
    return f"cell-{item}"


class TestFaultSpecParse:
    def test_basic(self):
        spec = FaultSpec.parse("mode=raise,rate=0.5,seed=7")
        assert spec.mode == "raise"
        assert spec.rate == 0.5
        assert spec.seed == 7

    def test_match_value_may_contain_equals(self):
        spec = FaultSpec.parse("mode=raise,match=cap=50")
        assert spec.match == "cap=50"

    def test_delay_fields(self):
        spec = FaultSpec.parse("mode=delay,delay_s=0.2")
        assert spec.mode == "delay"
        assert spec.delay_s == 0.2

    def test_times_with_state_dir(self, tmp_path):
        spec = FaultSpec.parse(f"mode=raise,times=2,state_dir={tmp_path}")
        assert spec.times == 2

    def test_empty_parts_ignored(self):
        assert FaultSpec.parse("mode=raise,,").mode == "raise"

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec field"):
            FaultSpec.parse("mode=raise,bogus=1")

    def test_not_key_value_rejected(self):
        with pytest.raises(ValueError, match="not key=value"):
            FaultSpec.parse("raise")


class TestFaultSpecValidation:
    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultSpec(mode="explode")

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(rate=1.5)

    def test_times_needs_state_dir(self):
        with pytest.raises(ValueError, match="state_dir"):
            FaultSpec(times=1)

    def test_negative_delay(self):
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec(mode="delay", delay_s=-0.1)


class TestSelection:
    def test_deterministic(self):
        spec = FaultSpec(rate=0.5, seed=3)
        picks = [spec.selects(f"cell-{i}") for i in range(50)]
        assert picks == [
            FaultSpec(rate=0.5, seed=3).selects(f"cell-{i}") for i in range(50)
        ]
        # A 0.5 rate over 50 cells selects some and spares some.
        assert any(picks) and not all(picks)

    def test_rate_extremes(self):
        assert not any(
            FaultSpec(rate=0.0).selects(f"c{i}") for i in range(20)
        )
        assert all(FaultSpec(rate=1.0).selects(f"c{i}") for i in range(20))

    def test_match_restricts(self):
        spec = FaultSpec(rate=1.0, match="cap=50")
        assert spec.selects("cap=50")
        assert not spec.selects("cap=60")

    def test_unit_is_stable_in_unit_interval(self):
        values = [_unit(0, f"k{i}") for i in range(100)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert values == [_unit(0, f"k{i}") for i in range(100)]


class TestInjectorModes:
    def test_raise_on_selected_cell(self):
        injector = FaultInjector(FaultSpec(rate=1.0), key_fn=_key)
        wrapped = injector.wrap(_double)
        with pytest.raises(InjectedFault, match="cell-3"):
            wrapped(3)

    def test_unselected_cell_passes_through(self):
        injector = FaultInjector(FaultSpec(rate=1.0, match="cell-9"), key_fn=_key)
        wrapped = injector.wrap(_double)
        assert wrapped(3) == 6
        with pytest.raises(InjectedFault):
            wrapped(9)

    def test_delay_still_returns_result(self):
        injector = FaultInjector(
            FaultSpec(mode="delay", rate=1.0, delay_s=0.01), key_fn=_key
        )
        assert injector.wrap(_double)(4) == 8

    def test_default_key_is_repr(self):
        wrapped = FaultInjector(FaultSpec(rate=1.0, match="'x'")).wrap(_double)
        with pytest.raises(InjectedFault):
            wrapped("x")

    def test_wrapped_task_pickles(self):
        wrapped = FaultInjector(FaultSpec(rate=1.0), key_fn=_key).wrap(_double)
        clone = pickle.loads(pickle.dumps(wrapped))
        with pytest.raises(InjectedFault):
            clone(1)

    def test_from_string(self):
        injector = FaultInjector.from_string("mode=raise,rate=1.0", key_fn=_key)
        with pytest.raises(InjectedFault):
            injector.wrap(_double)(1)


class TestBoundedInjection:
    def test_times_limits_injections(self, tmp_path):
        spec = FaultSpec(rate=1.0, times=2, state_dir=str(tmp_path / "state"))
        wrapped = FaultInjector(spec, key_fn=_key).wrap(_double)
        with pytest.raises(InjectedFault):
            wrapped(1)
        with pytest.raises(InjectedFault):
            wrapped(1)
        assert wrapped(1) == 2  # budget spent: the task now succeeds

    def test_times_is_per_cell(self, tmp_path):
        spec = FaultSpec(rate=1.0, times=1, state_dir=str(tmp_path / "state"))
        wrapped = FaultInjector(spec, key_fn=_key).wrap(_double)
        with pytest.raises(InjectedFault):
            wrapped(1)
        with pytest.raises(InjectedFault):
            wrapped(2)  # a different cell has its own budget
        assert wrapped(1) == 2
        assert wrapped(2) == 4


class TestCorruptMode:
    def test_torn_entries_degrade_to_cache_miss(self, tmp_path):
        cache = SolverCache(tmp_path / "cache")
        key = "ab" + "0" * 62
        cache.put(key, {"answer": 42})
        assert cache.get(key) == {"answer": 42}

        spec = FaultSpec(mode="corrupt", rate=1.0)
        wrapped = FaultInjector(
            spec, key_fn=_key, cache_root=tmp_path / "cache"
        ).wrap(_double)
        assert wrapped(1) == 2  # corrupt mode never fails the task itself

        fresh = SolverCache(tmp_path / "cache")
        assert fresh.get(key) is None  # torn entry reads as a miss, not an error

    def test_missing_cache_root_is_noop(self):
        spec = FaultSpec(mode="corrupt", rate=1.0)
        wrapped = FaultInjector(spec, key_fn=_key, cache_root="/nonexistent").wrap(
            _double
        )
        assert wrapped(1) == 2
