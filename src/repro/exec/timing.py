"""Phase timing and counter telemetry for experiment execution.

A :class:`Telemetry` object accumulates named wall-clock *spans* (trace,
assemble, solve, replay, ...) and integer *counters* (cache.hit,
cache.miss, ...).  Instrumented library code calls :func:`span` /
:func:`count`, which are no-ops unless a telemetry object has been
activated for the current context via :func:`use_telemetry` — so the
benchmark harness keeps measuring the bare, uninstrumented cost.

The module is deliberately stdlib-only: it sits below every other layer
(``repro.core`` and ``repro.simulator`` import it), so it must not import
anything from ``repro``.

Parallel workers each activate a fresh Telemetry, serialize it with
:meth:`Telemetry.to_dict`, and the parent merges the snapshots with
:meth:`Telemetry.merge` — per-phase times therefore report *aggregate CPU
seconds across workers*, which can exceed wall-clock time.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "PhaseStats",
    "Telemetry",
    "current_telemetry",
    "use_telemetry",
    "span",
    "count",
]

#: Version of the :meth:`Telemetry.to_dict` snapshot layout.  Bump on any
#: layout change; :meth:`Telemetry.merge` rejects mismatched snapshots so
#: a new parent never silently folds in a stale worker's numbers.
TELEMETRY_SCHEMA_VERSION = 1


@dataclass
class PhaseStats:
    """Accumulated wall-clock time of one named phase."""

    calls: int = 0
    total_s: float = 0.0

    def add(self, elapsed_s: float) -> None:
        self.calls += 1
        self.total_s += elapsed_s


@dataclass
class Telemetry:
    """Per-run telemetry: phase spans plus named counters."""

    phases: dict[str, PhaseStats] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def record_span(self, name: str, elapsed_s: float) -> None:
        self.phases.setdefault(name, PhaseStats()).add(elapsed_s)

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def phase_seconds(self, name: str) -> float:
        stats = self.phases.get(name)
        return stats.total_s if stats is not None else 0.0

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe snapshot (the CLI's ``--timings-json`` payload)."""
        return {
            "version": TELEMETRY_SCHEMA_VERSION,
            "phases": {
                name: {"calls": s.calls, "total_s": s.total_s}
                for name, s in sorted(self.phases.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`to_dict` snapshot (e.g. from a worker) into this
        telemetry.

        Raises :class:`ValueError` when the snapshot's schema ``version``
        is missing or differs from :data:`TELEMETRY_SCHEMA_VERSION` —
        numbers from a different layout must not be silently summed in.
        """
        version = snapshot.get("version")
        if version != TELEMETRY_SCHEMA_VERSION:
            raise ValueError(
                f"telemetry snapshot version {version!r} does not match "
                f"schema version {TELEMETRY_SCHEMA_VERSION}"
            )
        for name, s in snapshot.get("phases", {}).items():
            stats = self.phases.setdefault(name, PhaseStats())
            stats.calls += int(s["calls"])
            stats.total_s += float(s["total_s"])
        for name, n in snapshot.get("counters", {}).items():
            self.count(name, int(n))

    def summary(self) -> str:
        """Human-readable phase/counter table."""
        lines = ["timing summary", "--------------"]
        if self.phases:
            width = max(len(n) for n in self.phases)
            for name in sorted(self.phases):
                s = self.phases[name]
                lines.append(f"{name:<{width}}  {s.total_s:>9.3f} s  ({s.calls} calls)")
        else:
            lines.append("(no phases recorded)")
        if self.counters:
            lines.append("")
            width = max(len(n) for n in self.counters)
            for name in sorted(self.counters):
                lines.append(f"{name:<{width}}  {self.counters[name]}")
        lookups = self.counter("cache.hit") + self.counter("cache.miss")
        if lookups:
            rate = 100.0 * self.counter("cache.hit") / lookups
            lines.append("")
            lines.append(
                f"cache hit rate  {rate:.1f}% "
                f"({self.counter('cache.hit')}/{lookups} lookups, "
                f"{self.counter('cache.store')} stores)"
            )
        return "\n".join(lines)


#: The active telemetry for this context (None = telemetry disabled).
_current: ContextVar[Telemetry | None] = ContextVar("repro_telemetry", default=None)


def current_telemetry() -> Telemetry | None:
    """The telemetry active in this context, or None when disabled."""
    return _current.get()


@contextmanager
def use_telemetry(telemetry: Telemetry):
    """Activate ``telemetry`` for the duration of the with-block."""
    token = _current.set(telemetry)
    try:
        yield telemetry
    finally:
        _current.reset(token)


@contextmanager
def span(name: str):
    """Time a named phase into the active telemetry (no-op when disabled)."""
    telemetry = _current.get()
    if telemetry is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        telemetry.record_span(name, time.perf_counter() - start)


def count(name: str, n: int = 1) -> None:
    """Bump a named counter on the active telemetry (no-op when disabled)."""
    telemetry = _current.get()
    if telemetry is not None:
        telemetry.count(name, n)
