"""Figure 14: SP — LP and Conductor improvement vs Static.

Paper: SP is so well balanced that the LP shows little room (<~3%), and
Conductor actually *regresses* vs Static (-1.5% average, -2.6% worst) by
misidentifying the critical path and paying DVFS/reallocation overheads.
"""

import numpy as np

from conftest import engage, improvements


def test_fig14_regeneration(benchmark, sweeps):
    rows = benchmark(
        lambda: [
            (r.cap_per_socket_w, r.lp_vs_static_pct, r.conductor_vs_static_pct)
            for r in sweeps["sp"]
        ]
    )
    assert len(rows) == 5


def test_fig14_lp_gain_small(benchmark, sweeps):
    engage(benchmark)
    vals = improvements(sweeps["sp"], "lp_vs_static_pct")
    assert max(vals) < 10.0  # paper axis tops out around 3%
    # cross-window jitter can show a few tenths of a percent 'loss'
    assert min(vals) > -0.5


def test_fig14_conductor_can_regress(benchmark, sweeps):
    """Conductor's defining SP behaviour: at least one cap shows a
    regression vs Static, bounded like the paper's -2.6% worst case."""
    engage(benchmark)
    vals = improvements(sweeps["sp"], "conductor_vs_static_pct")
    assert min(vals) < 0.0
    assert min(vals) > -6.0


def test_fig14_conductor_avg_near_zero(benchmark, sweeps):
    """Paper: average -1.5% — Conductor neither helps nor breaks SP."""
    engage(benchmark)
    vals = improvements(sweeps["sp"], "conductor_vs_static_pct")
    assert -4.0 < float(np.mean(vals)) < 2.0


def test_fig14_unschedulable_at_30(benchmark, sweeps):
    engage(benchmark)
    assert not sweeps["sp"][0].schedulable or (
        sweeps["sp"][0].cap_per_socket_w >= 40.0
    )
