"""ASCII Gantt rendering of simulation results and schedules.

Terminal-friendly timelines for eyeballing what a policy actually did:
one row per rank, glyphs encoding the running configuration's thread
count, '.' for idle/MPI wait.  Used by examples and handy in tests when a
schedule "looks wrong".
"""

from __future__ import annotations

from ..core.schedule import PowerSchedule
from ..simulator.engine import SimulationResult
from ..simulator.trace import Trace

__all__ = ["gantt_from_result", "gantt_from_schedule"]

_GLYPHS = "123456789abcdefg"  # thread count -> glyph


def _render_rows(
    rows: list[list[tuple[float, float, int]]],
    t_end: float,
    width: int,
    labels: list[str],
) -> str:
    """rows: per rank, list of (start, end, threads) intervals."""
    if t_end <= 0:
        raise ValueError("empty timeline")
    out = []
    for label, intervals in zip(labels, rows):
        cells = ["."] * width
        for start, end, threads in intervals:
            lo = int(start / t_end * width)
            hi = max(lo + 1, int(end / t_end * width))
            glyph = _GLYPHS[min(threads, len(_GLYPHS)) - 1]
            for x in range(lo, min(hi, width)):
                cells[x] = glyph
        out.append(f"{label:>6} |{''.join(cells)}|")
    scale = f"{'':>6}  0{'s':<{max(width - 12, 1)}}{t_end:8.3f}s"
    out.append(scale)
    out.append(f"{'':>6}  glyphs: thread count (1-8), '.' = idle/MPI")
    return "\n".join(out)


def gantt_from_result(result: SimulationResult, width: int = 72) -> str:
    """Render an executed simulation as a per-rank timeline."""
    rows = []
    labels = []
    for rank, recs in enumerate(result.records_by_rank()):
        rows.append(
            [(r.start_s, r.end_s, r.config.threads) for r in recs]
        )
        labels.append(f"r{rank}")
    return _render_rows(rows, result.makespan_s, width, labels)


def gantt_from_schedule(
    trace: Trace, schedule: PowerSchedule, width: int = 72
) -> str:
    """Render an LP/ILP schedule (scheduled vertex times + durations)."""
    v = schedule.vertex_times
    rows: list[list[tuple[float, float, int]]] = []
    labels = []
    for rank in range(trace.graph.n_ranks):
        intervals = []
        for e in trace.graph.rank_edges(rank):
            a = schedule.assignments[trace.edge_refs[e.id]]
            start = float(v[e.src])
            intervals.append(
                (start, start + a.duration_s, a.configuration.threads)
            )
        rows.append(intervals)
        labels.append(f"r{rank}")
    return _render_rows(rows, schedule.objective_s, width, labels)


def power_profile_ascii(timeline, cap_w: float | None = None,
                        width: int = 72, height: int = 12) -> str:
    """Render a :class:`~repro.simulator.telemetry.PowerTimeline` as an
    ASCII area chart, with an optional cap line ('=')."""

    times = timeline.times
    power = timeline.power
    if len(power) == 0:
        raise ValueError("empty timeline")
    t_end = float(times[-1])
    top = float(max(power.max(), cap_w or 0.0)) * 1.05
    grid = [[" "] * width for _ in range(height)]
    for x in range(width):
        t = (x + 0.5) / width * t_end
        p = timeline.power_at(min(t, t_end * (1 - 1e-9)))
        level = int(p / top * height)
        for y in range(level):
            grid[height - 1 - y][x] = "#"
    if cap_w is not None and cap_w < top:
        y_cap = height - 1 - int(cap_w / top * height)
        if 0 <= y_cap < height:
            for x in range(width):
                if grid[y_cap][x] == " ":
                    grid[y_cap][x] = "="
    rows = [f"{top * (height - y) / height:7.0f}W |" + "".join(r)
            for y, r in enumerate(grid)]
    rows.append(f"{'':>9}0s{'':<{max(width - 12, 1)}}{t_end:8.3f}s")
    if cap_w is not None:
        rows.append(f"{'':>9}'=' marks the {cap_w:.0f} W job cap")
    return "\n".join(rows)
