"""Unit tests for schedule JSON serialization."""

import json

import numpy as np
import pytest

from repro.core import (
    load_schedule,
    round_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
    solve_fixed_order_lp,
)
from repro.machine import SocketPowerModel, TaskKernel
from repro.simulator import replay_schedule, trace_application

from ..conftest import make_p2p_app


@pytest.fixture(scope="module")
def setup():
    kernel = TaskKernel(cpu_seconds=1.0, mem_seconds=0.2,
                        parallel_fraction=0.98, mem_parallel_fraction=0.9,
                        bw_saturation_threads=4, mem_intensity=0.3)
    models = [SocketPowerModel(), SocketPowerModel(efficiency=1.05)]
    app = make_p2p_app(kernel, iterations=2)
    trace = trace_application(app, models)
    lp = solve_fixed_order_lp(trace, 58.0)
    return app, models, trace, lp.schedule


class TestRoundtrip:
    def test_dict_roundtrip(self, setup):
        *_, sched = setup
        back = schedule_from_dict(schedule_to_dict(sched))
        assert back.kind == sched.kind
        assert back.cap_w == sched.cap_w
        assert back.objective_s == pytest.approx(sched.objective_s)
        np.testing.assert_allclose(back.vertex_times, sched.vertex_times)
        assert set(back.assignments) == set(sched.assignments)
        for ref, a in sched.assignments.items():
            b = back.assignments[ref]
            assert b.duration_s == pytest.approx(a.duration_s)
            assert b.power_w == pytest.approx(a.power_w)
            assert b.configuration == a.configuration

    def test_file_roundtrip(self, setup, tmp_path):
        *_, sched = setup
        path = tmp_path / "schedule.json"
        save_schedule(sched, path)
        back = load_schedule(path)
        assert back.config_map() == sched.config_map()

    def test_json_is_plain(self, setup, tmp_path):
        *_, sched = setup
        path = tmp_path / "schedule.json"
        save_schedule(sched, path)
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert isinstance(data["assignments"], list)

    def test_discrete_schedule_roundtrip(self, setup, tmp_path):
        _, _, trace, sched = setup
        disc = round_schedule(trace, sched, mode="floor")
        path = tmp_path / "discrete.json"
        save_schedule(disc, path)
        back = load_schedule(path)
        assert back.kind == "discrete"
        assert all(a.is_discrete for a in back.assignments.values())

    def test_loaded_schedule_replays(self, setup, tmp_path):
        """The offline workflow: solve, save, ship, load, replay."""
        app, models, trace, sched = setup
        disc = round_schedule(trace, sched, mode="floor")
        path = tmp_path / "ship.json"
        save_schedule(disc, path)
        shipped = load_schedule(path)
        out = replay_schedule(app, shipped.config_map(), models, cap_w=58.0)
        assert out.cap_respected

    def test_version_guard(self, setup):
        *_, sched = setup
        data = schedule_to_dict(sched)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            schedule_from_dict(data)
