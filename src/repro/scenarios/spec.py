"""Declarative scenario specifications: experiments as data.

A :class:`ScenarioSpec` describes one complete N-way evaluation — a
benchmark, a grid of per-socket power caps, and an arbitrary ordered list
of policies drawn from the :mod:`repro.scenarios.registry` — plus every
knob of the measurement protocol (iteration counts, discard/steady
windows, seeds).  The spec has a canonical JSON form, so the *same*
document drives the executor, the CLI (``--scenario FILE.json``), cell
cache keys, and the run manifest: what was evaluated is always recorded,
hashable, and replayable.

Two hashes matter:

* :meth:`ScenarioSpec.spec_hash` digests the full document (including
  the cap grid) — the identity stamped into manifests and payload guards;
* :meth:`ScenarioSpec.cell_hash` digests the document *minus* the cap
  grid — the namespace of per-(spec, cap) cache cells, so extending a
  sweep by one cap leaves every previously computed cell warm.

The canonical form follows :mod:`repro.exec.keys`: sorted keys, compact
separators, shortest-round-trip floats.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..exec.keys import canonical_json, digest
from ..machine.device import LEGACY_NODE, node_registry
from ..simulator.program import Application
from ..workloads import BENCHMARKS, WorkloadSpec
from ..workloads.synthetic import imbalanced_collective_app, phased_offload_app

__all__ = [
    "SCENARIO_LAYER_VERSION",
    "SCENARIO_BENCHMARKS",
    "make_synthetic",
    "make_phased_offload",
    "PolicySpec",
    "ScenarioSpec",
]

#: Bump whenever the scenario cell semantics or payload layout change;
#: every existing scenario cache cell then misses (never mis-maps).
#: v2: scenarios gained the ``node`` field (typed-device machine layer).
#: v3: cell outcomes carry per-iteration ``energy_j`` (energy-objective
#: policies and performance-per-watt frontiers).
SCENARIO_LAYER_VERSION = 3


def make_synthetic(spec: WorkloadSpec) -> Application:
    """The imbalanced-collective synthetic as a standard benchmark generator.

    Small enough for N-way smoke runs (a few compute tasks per rank per
    iteration) while still exhibiting the load imbalance that separates
    reallocating policies from uniform ones.
    """
    return imbalanced_collective_app(
        n_ranks=spec.n_ranks, iterations=spec.iterations, seed=spec.seed
    )


def make_phased_offload(spec: WorkloadSpec) -> Application:
    """The CPU<->GPU power-shifting workload as a standard benchmark.

    Alternating serial-heavy and offload-friendly phases (see
    :func:`~repro.workloads.synthetic.phased_offload_app`); pair it with
    a heterogeneous ``node`` to expose cross-device power shifting.
    """
    return phased_offload_app(
        n_ranks=spec.n_ranks, iterations=spec.iterations, seed=spec.seed
    )


#: Benchmarks addressable from a scenario: the paper's four evaluated
#: proxies plus the synthetic smoke and power-shifting workloads.
SCENARIO_BENCHMARKS = {
    **BENCHMARKS,
    "synthetic": make_synthetic,
    "phased-offload": make_phased_offload,
}


@dataclass(frozen=True)
class PolicySpec:
    """One policy instance inside a scenario.

    ``policy`` is a registry name (see :func:`~repro.scenarios.registry.
    default_registry`); ``name`` labels this instance in results, trace
    scopes, and cache payloads (defaults to the policy name, and must be
    unique within a scenario — two Conductor variants in one scenario
    need distinct names); ``config`` overrides the registry entry's
    default configuration and must be JSON-serializable.
    """

    policy: str
    name: str | None = None
    config: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.policy or not isinstance(self.policy, str):
            raise ValueError(f"policy must be a non-empty string, got {self.policy!r}")
        if self.name is not None and not self.name:
            raise ValueError("policy instance name must be non-empty when given")
        if self.name == self.policy:
            # Canonical form: an explicit name equal to the policy name is
            # the default — normalizing makes doc round-trips exact.
            object.__setattr__(self, "name", None)

    @property
    def label(self) -> str:
        """The instance label: explicit ``name``, or the policy name."""
        return self.name if self.name is not None else self.policy

    def to_doc(self) -> dict:
        """Canonical JSON-safe document of this policy instance."""
        return {"policy": self.policy, "name": self.label, "config": dict(self.config)}

    @classmethod
    def from_doc(cls, doc: dict) -> "PolicySpec":
        """Rebuild a policy instance from :meth:`to_doc` output."""
        return cls(
            policy=str(doc["policy"]),
            name=doc.get("name"),
            config=dict(doc.get("config") or {}),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative experiment: benchmark x caps x policies.

    The measurement protocol mirrors the paper's (§5.3/§6) and the legacy
    ``ExperimentConfig``: adaptive policies are measured over the trailing
    ``steady_window`` iterations, non-adaptive ones after the first
    ``discard_iterations``, and LP-family bounds schedule a statistically
    identical ``lp_iterations``-step trace.
    """

    benchmark: str
    caps_per_socket_w: tuple[float, ...]
    policies: tuple[PolicySpec, ...]
    n_ranks: int = 32
    run_iterations: int = 24
    lp_iterations: int = 4
    discard_iterations: int = 3
    steady_window: int = 12
    seed: int = 2015
    efficiency_seed: int = 42
    efficiency_sigma: float = 0.04
    #: Named node from :func:`repro.machine.device.node_registry`.  The
    #: default is the legacy homogeneous socket; heterogeneous nodes give
    #: every rank the named device mix (CLI: ``--node``).
    node: str = LEGACY_NODE

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "caps_per_socket_w",
            tuple(float(c) for c in self.caps_per_socket_w),
        )
        object.__setattr__(self, "policies", tuple(self.policies))
        if self.benchmark not in SCENARIO_BENCHMARKS:
            raise ValueError(
                f"unknown benchmark {self.benchmark!r}; "
                f"choose from {sorted(SCENARIO_BENCHMARKS)}"
            )
        if not self.caps_per_socket_w:
            raise ValueError("a scenario needs at least one cap")
        if any(c <= 0 for c in self.caps_per_socket_w):
            raise ValueError("caps must be positive")
        if not self.policies:
            raise ValueError("a scenario needs at least one policy")
        labels = [p.label for p in self.policies]
        dupes = sorted({x for x in labels if labels.count(x) > 1})
        if dupes:
            raise ValueError(
                f"duplicate policy instance names {dupes}; give each "
                "instance a unique 'name'"
            )
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if self.lp_iterations < 1:
            raise ValueError("lp_iterations must be >= 1")
        if self.run_iterations <= self.discard_iterations:
            raise ValueError("run_iterations must exceed discard_iterations")
        if self.steady_window > self.run_iterations - self.discard_iterations:
            raise ValueError("steady_window larger than the measured region")
        if self.steady_window < 1:
            raise ValueError("steady_window must be >= 1")
        if self.efficiency_sigma < 0:
            raise ValueError("efficiency_sigma must be >= 0")
        if self.node not in node_registry():
            raise ValueError(
                f"unknown node {self.node!r}; "
                f"choose from {sorted(node_registry())}"
            )

    # ------------------------------------------------------------------
    def policy_labels(self) -> list[str]:
        """Instance labels in evaluation order."""
        return [p.label for p in self.policies]

    def to_doc(self) -> dict:
        """Canonical JSON-safe document of the full scenario.

        The ``node`` key is omitted for the legacy homogeneous node so
        pre-node documents, spec hashes, cell hashes, and manifests are
        reproduced byte for byte.
        """
        doc = {
            "benchmark": self.benchmark,
            "caps_per_socket_w": list(self.caps_per_socket_w),
            "policies": [p.to_doc() for p in self.policies],
            "n_ranks": self.n_ranks,
            "run_iterations": self.run_iterations,
            "lp_iterations": self.lp_iterations,
            "discard_iterations": self.discard_iterations,
            "steady_window": self.steady_window,
            "seed": self.seed,
            "efficiency_seed": self.efficiency_seed,
            "efficiency_sigma": self.efficiency_sigma,
        }
        if self.node != LEGACY_NODE:
            doc["node"] = self.node
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "ScenarioSpec":
        """Rebuild a scenario from :meth:`to_doc` output (extra keys rejected)."""
        known = {
            "benchmark", "caps_per_socket_w", "policies", "n_ranks",
            "run_iterations", "lp_iterations", "discard_iterations",
            "steady_window", "seed", "efficiency_seed", "efficiency_sigma",
            "node",
        }
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(f"unknown scenario fields: {unknown}")
        kwargs: dict[str, Any] = {
            k: doc[k] for k in known if k in doc and k != "policies"
        }
        kwargs["policies"] = tuple(
            PolicySpec.from_doc(p) for p in doc.get("policies", ())
        )
        return cls(**kwargs)

    def to_json(self) -> str:
        """The canonical (sorted, compact) JSON form of the scenario."""
        return canonical_json(self.to_doc())

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a scenario from JSON (canonical or hand-written)."""
        return cls.from_doc(json.loads(text))

    # ------------------------------------------------------------------
    def spec_hash(self) -> str:
        """SHA-256 of the full canonical document (manifest identity)."""
        return digest(self.to_doc())

    def cell_hash(self) -> str:
        """SHA-256 of the cap-grid-independent document (cache namespace).

        Cells are keyed per (this hash, cap), so the same cell computed by
        a single-cap run and by a wider sweep is one warm cache entry.
        """
        doc = self.to_doc()
        del doc["caps_per_socket_w"]
        return digest(doc)
