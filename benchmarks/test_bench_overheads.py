"""Section 6.2: instrumentation and control overheads.

Paper: profiling adds 34 us per MPI call (<0.05% of runtime), replaying an
LP schedule costs a median 145 us DVFS transition per task, and Conductor's
synchronous reallocation costs 566 us per invocation, amortized across
5-10 Pcontrol intervals.
"""

import pytest

from conftest import engage

from repro.experiments import overheads_summary


@pytest.fixture(scope="module")
def overheads():
    return overheads_summary(n_ranks=8, iterations=12)



def test_overheads_regeneration(benchmark):
    res = benchmark.pedantic(
        overheads_summary, kwargs=dict(n_ranks=4, iterations=8),
        rounds=1, iterations=1,
    )
    assert res.measured_reallocs >= 1


def test_tracing_overhead_below_bound(benchmark, overheads):
    """Paper: tracing adds less than 0.05% to application time."""
    engage(benchmark)
    assert overheads.measured_tracing_fraction < 0.0005
    assert overheads.measured_tracing_fraction >= 0.0


def test_paper_constants_wired(benchmark, overheads):
    engage(benchmark)
    assert overheads.tracing_per_call_s == pytest.approx(34e-6)
    assert overheads.dvfs_switch_s == pytest.approx(145e-6)
    assert overheads.realloc_per_invocation_s == pytest.approx(566e-6)


def test_realloc_amortization(benchmark, overheads):
    """Reallocation decisions occur every several Pcontrol calls, so the
    566 us each never dominates: total reallocation overhead across the
    run stays tiny relative to a single iteration."""
    engage(benchmark)
    total = overheads.measured_reallocs * overheads.realloc_per_invocation_s
    assert total < 0.05  # seconds, across the whole 12-iteration run
