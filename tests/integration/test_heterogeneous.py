"""Heterogeneous-machine tests: per-rank CPU specs through the pipeline.

The paper's cluster is homogeneous, but its prior work ([5]: CPU+GPU
nodes) and modern procurement both mix socket generations.  The engine,
tracer, LP, and runtimes follow each rank's own CpuSpec, so a mixed
machine works end to end.
"""

import pytest

from repro.core import solve_fixed_order_lp
from repro.machine import Configuration, CpuSpec, SocketPowerModel
from repro.runtime import StaticPolicy
from repro.simulator import (
    Application,
    CollectiveOp,
    ComputeOp,
    Engine,
    TaskRef,
    trace_application,
)

BIG = CpuSpec(name="big", cores=8, fmin_ghz=1.2, fmax_ghz=2.6, fstep_ghz=0.1)
LITTLE = CpuSpec(name="little", cores=4, fmin_ghz=1.0, fmax_ghz=2.0,
                 fstep_ghz=0.2)


@pytest.fixture
def mixed_models():
    return [SocketPowerModel(spec=BIG), SocketPowerModel(spec=LITTLE)]


@pytest.fixture
def mixed_app(kernel):
    return Application(
        "mixed",
        [
            [ComputeOp(kernel, 0), CollectiveOp("allreduce", 8, iteration=0)],
            [ComputeOp(kernel, 0), CollectiveOp("allreduce", 8, iteration=0)],
        ],
        iterations=1,
    )


class FixedPerRank:
    """Fastest per-rank config, aware of each socket's spec."""

    def __init__(self, models):
        self.models = models

    def configure(self, ref, kernel, iteration, current):
        spec = self.models[ref.rank].spec
        return Configuration(spec.fmax_ghz, spec.cores)

    def on_pcontrol(self, iteration, records):
        return 0.0

    def switch_cost_s(self):
        return 0.0


class TestHeterogeneousEngine:
    def test_per_rank_timing(self, mixed_models, mixed_app, kernel):
        engine = Engine(mixed_models, mpi_call_overhead_s=0.0)
        res = engine.run(mixed_app, FixedPerRank(mixed_models))
        by_rank = res.records_by_rank()
        # The little socket (4 cores @ 2.0 GHz) is slower on the same task.
        assert by_rank[1][0].duration_s > by_rank[0][0].duration_s
        # Timing follows each rank's own spec exactly.
        from repro.machine import TaskTimeModel

        t_big = TaskTimeModel(BIG).duration(kernel, 2.6, 8)
        t_little = TaskTimeModel(LITTLE).duration(kernel, 2.0, 4)
        assert by_rank[0][0].duration_s == pytest.approx(t_big)
        assert by_rank[1][0].duration_s == pytest.approx(t_little)


class TestHeterogeneousTraceAndLp:
    def test_frontiers_respect_rank_specs(self, mixed_models, mixed_app):
        trace = trace_application(mixed_app, mixed_models)
        big_front = trace.frontier_for(TaskRef(0, 0))
        little_front = trace.frontier_for(TaskRef(1, 0))
        assert max(p.config.threads for p in big_front) == 8
        assert max(p.config.threads for p in little_front) == 4
        assert max(p.config.freq_ghz for p in little_front) == 2.0

    def test_lp_solves_mixed_machine(self, mixed_models, mixed_app):
        trace = trace_application(mixed_app, mixed_models)
        res = solve_fixed_order_lp(trace, 70.0)
        assert res.feasible
        # The little rank's assignment stays within its spec.
        cfg = res.schedule.assignments[TaskRef(1, 0)].configuration
        assert cfg.threads <= 4
        assert cfg.freq_ghz <= 2.0

    def test_lp_gives_slow_socket_its_share(self, mixed_models, mixed_app):
        """The little socket is the bottleneck: the LP runs it flat out
        while the big socket coasts (slack absorbed at lower power)."""
        trace = trace_application(mixed_app, mixed_models)
        res = solve_fixed_order_lp(trace, 200.0)
        little = res.schedule.assignments[TaskRef(1, 0)]
        front = trace.frontier_for(TaskRef(1, 0))
        assert little.duration_s == pytest.approx(front[-1].duration_s,
                                                  rel=1e-6)


class TestHeterogeneousStatic:
    def test_rapl_uses_per_rank_cores(self, mixed_models, mixed_app):
        policy = StaticPolicy(mixed_models, 60.0)
        res = Engine(mixed_models).run(mixed_app, policy)
        by_rank = res.records_by_rank()
        assert by_rank[0][0].config.threads == 8
        assert by_rank[1][0].config.threads == 4
