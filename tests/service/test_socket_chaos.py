"""Chaos smoke: SIGKILL a fleet worker mid-drain, demand byte-identity.

The CI socket-fleet gate: a two-worker fleet loses one worker to SIGKILL
while a drain is in flight; the drain must still settle every job ok
(the runner charges the death as one attempt and resubmits on the
respawned fleet), and the journal the fleet wrote must rehydrate a sweep
byte-identical to a fresh serial run — the determinism contract is
transport- and fault-independent.
"""

from __future__ import annotations

import json
import os
import signal

from repro.exec.backends import SocketWorkerBackend
from repro.exec.checkpoint import SweepJournal
from repro.scenarios.run import cell_payload, run_scenarios
from repro.scenarios.spec import PolicySpec, ScenarioSpec
from repro.service import FleetDispatcher, JobQueue


def spec() -> ScenarioSpec:
    return ScenarioSpec(
        benchmark="synthetic",
        caps_per_socket_w=(30.0, 40.0, 50.0, 60.0),
        policies=(PolicySpec("static"), PolicySpec("lp")),
        n_ranks=4,
        run_iterations=8,
        lp_iterations=2,
        discard_iterations=2,
        steady_window=4,
    )


class KillOneWorker:
    """Progress hook that SIGKILLs a worker after the first cell settles."""

    def __init__(self, backend: SocketWorkerBackend):
        self.backend = backend
        self.fired = False

    def update(self, ok=True, resumed=False):
        if not self.fired and self.backend.worker_pids():
            self.fired = True
            os.kill(self.backend.worker_pids()[-1], signal.SIGKILL)


def test_fleet_survives_sigkill_and_stays_byte_identical(tmp_path):
    s = spec()
    queue = JobQueue(tmp_path / "q")
    queue.submit_cells(s)
    journal = SweepJournal(tmp_path / "sweep.jsonl")
    backend = SocketWorkerBackend(heartbeat_s=0.2)
    backend.start(2)
    killer = KillOneWorker(backend)
    try:
        summary = FleetDispatcher(
            queue, backend=backend, workers=2, journal=journal,
            retries=2, backoff_s=0.0, progress=killer,
        ).drain()
    finally:
        backend.shutdown()
    assert killer.fired, "the chaos never fired — nothing was tested"
    assert summary == {"claimed": 4, "resumed": 0, "computed": 4, "failed": 0}
    assert all(j.state == "done" for j in queue.jobs.values())

    # Byte-identity: a sweep rehydrated purely from the fleet's journal
    # must equal a fresh serial sweep, payload for payload.
    records = journal.load()
    assert len(records) == 4
    assert all(doc["status"] == "ok" for doc in records.values())
    resumed = run_scenarios(s, workers=1, journal=journal)
    serial = run_scenarios(s, workers=1)
    fleet_bytes = json.dumps(
        [cell_payload(s, c) for c in resumed.cells], sort_keys=True
    )
    serial_bytes = json.dumps(
        [cell_payload(s, c) for c in serial.cells], sort_keys=True
    )
    assert fleet_bytes == serial_bytes
