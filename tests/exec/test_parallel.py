"""ParallelRunner: ordering, serial fallback, retries, timeouts, telemetry."""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.exec.parallel import (
    ParallelExecutionError,
    ParallelRunner,
    resolve_workers,
)
from repro.exec.timing import Telemetry, count, span, use_telemetry
from repro.obs.audit import SolveAudit, SolveRecord, record_solve, use_audit
from repro.obs.events import CounterEvent
from repro.obs.recorder import TraceRecorder, emit, use_recorder


# Module-level task functions so worker processes can unpickle them.
def _slow_identity(item: int) -> int:
    time.sleep(0.02 * item)
    return item * 10


def _boom(item: int) -> int:
    raise ValueError(f"boom {item}")


def _flaky(marker: str) -> str:
    """Fails once per marker path, then succeeds (exercises retries)."""
    path = Path(marker)
    if not path.exists():
        path.write_text("attempted")
        raise RuntimeError("first attempt always fails")
    return "ok"


def _sleepy(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def _instrumented(item: int) -> int:
    with span("worker.phase"):
        count("worker.count", item)
    return item


def _emits_observability(item: int) -> int:
    emit(CounterEvent(name="w", ts_s=float(item), values={"v": item}))
    record_solve(SolveRecord(
        program=f"p{item}", backend="linprog", source="cold", rows=1, cols=1,
        nnz=1, iterations=1, status="optimal", objective=0.0, wall_s=0.001,
    ))
    return item


class TestResolveWorkers:
    def test_mapping(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestConstruction:
    def test_bad_timeout(self):
        with pytest.raises(ValueError):
            ParallelRunner(max_workers=2, timeout_s=0.0)

    def test_bad_retries(self):
        with pytest.raises(ValueError):
            ParallelRunner(max_workers=2, retries=-1)


class TestSerialFallback:
    def test_one_worker_runs_in_process(self):
        # A closure is unpicklable: success proves no pool was involved.
        runner = ParallelRunner(max_workers=1)
        assert runner.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]

    def test_single_item_runs_in_process(self):
        runner = ParallelRunner(max_workers=4)
        assert runner.map(lambda x: x + 1, [41]) == [42]

    def test_empty_items(self):
        assert ParallelRunner(max_workers=4).map(_slow_identity, []) == []

    def test_serial_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            ParallelRunner(max_workers=1).map(_boom, [7])


class TestParallelMap:
    def test_results_in_submission_order(self):
        runner = ParallelRunner(max_workers=4)
        items = [3, 1, 2, 0, 4]
        assert runner.map(_slow_identity, items) == [30, 10, 20, 0, 40]

    def test_matches_serial(self):
        items = list(range(6))
        serial = ParallelRunner(max_workers=1).map(_slow_identity, items)
        parallel = ParallelRunner(max_workers=3).map(_slow_identity, items)
        assert parallel == serial

    def test_failure_exhausts_retries(self):
        runner = ParallelRunner(max_workers=2, retries=1)
        with pytest.raises(ParallelExecutionError, match="failed on all 2"):
            runner.map(_boom, [1, 2])

    def test_retry_recovers_transient_failure(self, tmp_path):
        runner = ParallelRunner(max_workers=2, retries=1)
        markers = [str(tmp_path / f"m{i}") for i in range(3)]
        assert runner.map(_flaky, markers) == ["ok"] * 3

    def test_no_retries_fails_fast(self, tmp_path):
        runner = ParallelRunner(max_workers=2, retries=0)
        with pytest.raises(ParallelExecutionError, match="1 attempt"):
            runner.map(_flaky, [str(tmp_path / "m0"), str(tmp_path / "m1")])

    def test_timeout_raises_after_attempts(self):
        runner = ParallelRunner(max_workers=2, timeout_s=0.2, retries=0)
        with pytest.raises(ParallelExecutionError, match="timed out"):
            runner.map(_sleepy, [1.5, 1.5])

    def test_generous_timeout_passes(self):
        runner = ParallelRunner(max_workers=2, timeout_s=30.0)
        assert runner.map(_sleepy, [0.01, 0.02]) == [0.01, 0.02]

    def test_worker_telemetry_merges_into_parent(self):
        tel = Telemetry()
        with use_telemetry(tel):
            results = ParallelRunner(max_workers=2).map(_instrumented, [1, 2, 3])
        assert results == [1, 2, 3]
        assert tel.phases["worker.phase"].calls == 3
        assert tel.counter("worker.count") == 6

    def test_no_parent_telemetry_is_fine(self):
        assert ParallelRunner(max_workers=2).map(_instrumented, [1, 2]) == [1, 2]

    def test_worker_traces_merge_in_submission_order(self):
        rec = TraceRecorder()
        audit = SolveAudit()
        with use_recorder(rec), use_audit(audit):
            ParallelRunner(max_workers=2).map(_emits_observability, [2, 0, 1])
        counters = [d for d in rec.snapshot() if d["kind"] == "counter"]
        # Batches fold in submission order, not completion order.
        assert [d["ts_s"] for d in counters] == [2.0, 0.0, 1.0]
        assert [d["seq"] for d in counters] == [0, 1, 2]
        assert [r.program for r in audit.records] == ["p2", "p0", "p1"]

    def test_workers_skip_observability_when_parent_has_none(self):
        # No recorder/audit in the parent: workers must not build them.
        results = ParallelRunner(max_workers=2).map(_emits_observability, [1, 2])
        assert results == [1, 2]
